"""Projection operators onto sparsity-constraint sets.

These implement the ADMM Z-update (Eq. 4 of the paper): Euclidean
projection of ``W + U`` onto the constraint set ``S``.  Each function maps a
weight matrix to the *keep mask* of its projection; the projected matrix is
then simply ``mask * W`` since all sets here are coordinate subspaces.

Available sets:

* unstructured magnitude (ESE-style non-structured pruning),
* whole-matrix row pruning / column pruning (filter/channel analogues of
  Figure 2),
* block column pruning — BSP Step 1: inside each block of a
  :class:`~repro.sparse.blocks.BlockGrid`, keep the strongest columns,
* bank-balanced pruning (the BBS baseline).

All keep counts are computed with ``ceil`` so a requested compression rate
never over-prunes to zero, and ties are broken deterministically by index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.pruning.mask import PruningMask
from repro.sparse.blocks import BlockGrid
from repro.utils.validation import check_2d


def _keep_count(total: int, rate: float) -> int:
    """How many of ``total`` items survive compression ``rate`` (>= 1)."""
    if rate < 1.0:
        raise ConfigError(f"compression rate must be >= 1, got {rate}")
    return max(1, int(np.ceil(total / rate)))


def _top_indices(scores: np.ndarray, keep: int) -> np.ndarray:
    """Indices of the ``keep`` largest scores; ties resolved by lower index."""
    if keep >= len(scores):
        return np.arange(len(scores))
    # argsort on (-score, index) gives deterministic tie-breaking.
    order = np.lexsort((np.arange(len(scores)), -scores))
    return np.sort(order[:keep])


def _top_mask_rows(scores: np.ndarray, keep: int) -> np.ndarray:
    """Per-row boolean mask keeping the ``keep`` largest of each row.

    Vectorized equivalent of calling :func:`_top_indices` on every row,
    with identical tie-breaking: ``np.argpartition`` finds each row's
    ``keep``-th largest value, every strictly larger entry is kept, and
    ties *at* that threshold are filled lowest-index-first (a cumulative
    count over the equal entries) until the row's quota is met.
    """
    rows, n = scores.shape
    if keep >= n:
        return np.ones((rows, n), dtype=bool)
    split = np.argpartition(scores, n - keep, axis=1)[:, n - keep]
    kth = scores[np.arange(rows), split][:, None]
    greater = scores > kth
    need_equal = keep - greater.sum(axis=1)
    equal = scores == kth
    tie_rank = np.cumsum(equal, axis=1)  # 1-based rank among a row's ties
    return greater | (equal & (tie_rank <= need_equal[:, None]))


def project_unstructured(weight: np.ndarray, rate: float) -> PruningMask:
    """Keep the ``1/rate`` fraction of weights with largest magnitude."""
    weight = np.asarray(weight)
    flat = np.abs(weight).reshape(-1)
    keep = _keep_count(flat.size, rate)
    mask = np.zeros(flat.size, dtype=bool)
    mask[_top_indices(flat, keep)] = True
    return PruningMask(mask.reshape(weight.shape))


def project_rows(weight: np.ndarray, rate: float) -> PruningMask:
    """Keep the ``1/rate`` fraction of rows with largest L2 norm.

    This is BSP Step 2 ('column-based row pruning' over the whole matrix)
    and also the classic filter-pruning baseline.
    """
    weight = check_2d(weight, "weight")
    norms = np.linalg.norm(weight, axis=1)
    keep_rows = _top_indices(norms, _keep_count(weight.shape[0], rate))
    mask = np.zeros(weight.shape, dtype=bool)
    mask[keep_rows, :] = True
    return PruningMask(mask)


def project_columns(weight: np.ndarray, rate: float) -> PruningMask:
    """Keep the ``1/rate`` fraction of whole columns with largest L2 norm
    (channel-pruning analogue)."""
    weight = check_2d(weight, "weight")
    norms = np.linalg.norm(weight, axis=0)
    keep_cols = _top_indices(norms, _keep_count(weight.shape[1], rate))
    mask = np.zeros(weight.shape, dtype=bool)
    mask[:, keep_cols] = True
    return PruningMask(mask)


def project_block_columns(
    weight: np.ndarray, grid: BlockGrid, rate: float
) -> PruningMask:
    """BSP Step 1: within every block region, keep the strongest columns.

    For each of the grid's ``Numr × Numc`` regions, column scores are the
    L2 norms of the column segments *inside that region*, so different row
    strips may keep different columns — the finer granularity that lets BSP
    out-compress whole-matrix structured pruning at equal accuracy.

    Vectorized: all per-strip column norms come from one
    ``np.add.reduceat`` over the squared matrix, blocks of equal width
    share one batched top-k (:func:`_top_mask_rows`), and the per-strip
    column mask expands to rows with a single ``np.repeat`` — this is the
    projection the ADMM Z-update runs every retraining epoch.
    """
    weight = grid.validate_matrix(check_2d(weight, "weight"))
    rows, cols = weight.shape
    strips = grid.num_row_strips
    row_starts = np.array([r0 for r0, _ in grid.row_bounds()], dtype=np.int64)
    scores = np.sqrt(np.add.reduceat(np.square(weight), row_starts, axis=0))
    col_mask = np.zeros((strips, cols), dtype=bool)
    by_width: dict = {}
    for c0, c1 in grid.col_bounds():
        by_width.setdefault(c1 - c0, []).append((c0, c1))
    for width, spans in by_width.items():
        keep = _keep_count(width, rate)
        cols_idx = np.concatenate([np.arange(c0, c1) for c0, c1 in spans])
        banks = scores[:, cols_idx].reshape(strips * len(spans), width)
        col_mask[:, cols_idx] = _top_mask_rows(banks, keep).reshape(
            strips, len(spans) * width
        )
    strip_sizes = np.diff(np.append(row_starts, rows))
    return PruningMask(np.repeat(col_mask, strip_sizes, axis=0))


def _project_block_columns_loop(
    weight: np.ndarray, grid: BlockGrid, rate: float
) -> PruningMask:
    """Seed per-region loop implementation of
    :func:`project_block_columns`, retained as ground truth for the
    equivalence tests and the benchmark baseline."""
    weight = grid.validate_matrix(check_2d(weight, "weight"))
    mask = np.zeros(weight.shape, dtype=bool)
    for region in grid.regions():
        rs, cs = region.slice()
        segment = weight[rs, cs]
        norms = np.linalg.norm(segment, axis=0)
        keep_local = _top_indices(norms, _keep_count(segment.shape[1], rate))
        mask[rs, region.col_start + keep_local] = True
    return PruningMask(mask)


def project_bank_balanced(
    weight: np.ndarray, bank_size: int, rate: float
) -> PruningMask:
    """Bank-balanced sparsity (BBS, Cao et al. 2019).

    Each row is split into consecutive banks of ``bank_size`` columns; the
    same number of largest-magnitude weights is kept in every bank, so all
    rows (and all banks) carry identical nonzero counts — load balance by
    construction, at the cost of coarser weight selection than BSP.
    """
    weight = check_2d(weight, "weight")
    rows, cols = weight.shape
    if bank_size < 1 or bank_size > cols:
        raise ConfigError(f"bank_size must be in [1, {cols}], got {bank_size}")
    scores = np.abs(weight)
    mask = np.zeros(weight.shape, dtype=bool)
    # All full banks reshape to one (rows * num_full, bank_size) batch and
    # share a single top-k pass; a ragged trailing bank (different width,
    # hence different keep count) gets its own pass.
    num_full, tail = divmod(cols, bank_size)
    if num_full:
        full_cols = num_full * bank_size
        banks = scores[:, :full_cols].reshape(rows * num_full, bank_size)
        keep = _keep_count(bank_size, rate)
        mask[:, :full_cols] = _top_mask_rows(banks, keep).reshape(rows, full_cols)
    if tail:
        keep = _keep_count(tail, rate)
        mask[:, num_full * bank_size :] = _top_mask_rows(
            scores[:, num_full * bank_size :], keep
        )
    return PruningMask(mask)


def _project_bank_balanced_loop(
    weight: np.ndarray, bank_size: int, rate: float
) -> PruningMask:
    """Seed per-bank/per-row loop implementation of
    :func:`project_bank_balanced`, retained as the tie-breaking ground
    truth for the equivalence tests and the benchmark baseline."""
    weight = check_2d(weight, "weight")
    rows, cols = weight.shape
    if bank_size < 1 or bank_size > cols:
        raise ConfigError(f"bank_size must be in [1, {cols}], got {bank_size}")
    mask = np.zeros(weight.shape, dtype=bool)
    for start in range(0, cols, bank_size):
        stop = min(start + bank_size, cols)
        bank = np.abs(weight[:, start:stop])
        keep = _keep_count(stop - start, rate)
        for r in range(rows):
            idx = _top_indices(bank[r], keep)
            mask[r, start + idx] = True
    return PruningMask(mask)
