"""Block-circulant compression — the C-LSTM baseline (Wang et al., FPGA'18).

C-LSTM replaces each ``b × b`` block of a weight matrix with a circulant
matrix, so a block stores only its defining vector (``b`` values instead of
``b²``, compression rate ``b``).  Unlike pruning, this is a *re-parameter-
ization*: weights are projected onto the circulant set (each generalized
diagonal replaced by its mean — the Euclidean projection) after every
optimizer step, i.e. projected gradient descent.

The paper's criticism (Section III-B): the coarse structure degrades
accuracy at high rates, and the original C-LSTM training pipeline could not
use ADMM.  We reproduce the method faithfully so Table-I-style comparisons
can rank it against BSP on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.base import PruningMethod
from repro.pruning.mask import MaskSet, PruningMask


def project_block_circulant(weight: np.ndarray, block_size: int) -> np.ndarray:
    """Project ``weight`` onto the set of block-circulant matrices.

    The matrix is tiled into ``block_size × block_size`` blocks (edge blocks
    may be smaller and are left unconstrained, matching the padding-free
    implementations); within each full block, every circulant diagonal
    ``(i - j) mod b`` is replaced by its mean value — the Euclidean
    projection onto circulant structure.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ConfigError(f"expected 2-D weight, got shape {weight.shape}")
    if block_size < 1:
        raise ConfigError(f"block_size must be >= 1, got {block_size}")
    out = weight.copy()
    rows, cols = weight.shape
    b = block_size
    i_idx, j_idx = np.indices((b, b))
    diag = (i_idx - j_idx) % b
    for r0 in range(0, rows - b + 1, b):
        for c0 in range(0, cols - b + 1, b):
            block = out[r0 : r0 + b, c0 : c0 + b]
            means = np.zeros(b)
            for d in range(b):
                means[d] = block[diag == d].mean()
            out[r0 : r0 + b, c0 : c0 + b] = means[diag]
    return out


def circulant_compression_rate(shape, block_size: int) -> float:
    """Storage compression of block-circulant structure on ``shape``.

    Full blocks store ``b`` values instead of ``b²``; partial edge blocks
    are left unconstrained by :func:`project_block_circulant` and are
    therefore charged at *full* density here — the rate only credits the
    ``b×`` saving to blocks the projection actually constrains, so it
    never overstates compression on shapes not divisible by ``b``
    (``tests/test_block_circulant_accounting.py`` keeps the two in
    lockstep by counting the projected matrix's degrees of freedom).
    """
    if block_size < 1:
        raise ConfigError(f"block_size must be >= 1, got {block_size}")
    if len(shape) != 2:
        raise ConfigError(f"expected a 2-D shape, got {tuple(shape)}")
    rows, cols = int(shape[0]), int(shape[1])
    if rows < 0 or cols < 0:
        raise ConfigError(f"shape dimensions must be >= 0, got {tuple(shape)}")
    b = block_size
    full_r, full_c = rows // b, cols // b
    stored = full_r * full_c * b  # circulant blocks
    stored += (rows - full_r * b) * cols + full_r * b * (cols - full_c * b)
    return (rows * cols) / stored if stored else float("inf")


@dataclass
class BlockCirculantConfig:
    """C-LSTM compression settings; ``block_size`` is the compression rate."""

    block_size: int = 8
    train_epochs: int = 4

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ConfigError(f"block_size must be >= 1, got {self.block_size}")
        if self.train_epochs < 0:
            raise ConfigError(f"train_epochs must be >= 0, got {self.train_epochs}")


class BlockCirculantCompressor(PruningMethod):
    """Projected-gradient training onto block-circulant weights."""

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        config: Optional[BlockCirculantConfig] = None,
    ) -> None:
        super().__init__(named_params)
        self.config = config or BlockCirculantConfig()
        self._epochs_done = 0
        self._project_all()

    def _project_all(self) -> None:
        for param in self.named_params.values():
            param.data[...] = project_block_circulant(
                param.data, self.config.block_size
            )

    def on_batch_end(self) -> None:
        self._project_all()

    def on_epoch_end(self) -> None:
        self._epochs_done += 1

    @property
    def finished(self) -> bool:
        return self._epochs_done >= self.config.train_epochs

    @property
    def masks(self) -> Optional[MaskSet]:
        """Circulant compression keeps all positions; masks are all-ones.

        The *storage* compression rate comes from
        :func:`circulant_compression_rate`, not from zeroed weights.
        """
        return MaskSet(
            {
                name: PruningMask.ones(param.data.shape)
                for name, param in self.named_params.items()
            }
        )

    def compression_rate(self) -> float:
        total = 0
        stored = 0.0
        for param in self.named_params.values():
            size = param.data.size
            total += size
            stored += size / circulant_compression_rate(
                param.data.shape, self.config.block_size
            )
        return total / stored if stored else float("inf")
