"""Per-layer pruning-sensitivity analysis.

A practical companion to the auto-tuner: before committing to a uniform
compression rate, measure how much each weight matrix's loss rises when it
alone is pruned (no retraining).  Layers whose loss barely moves can carry
more compression; sensitive layers should keep more weights.

:func:`allocate_rates` turns a sensitivity profile into per-layer rates
hitting a global compression target — a simple instance of the
sensitivity-guided allocation later pruning literature formalizes, and a
natural extension of the paper's per-model block-size tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.bsp import BSPConfig
from repro.pruning.projections import project_block_columns
from repro.sparse.blocks import grid_for

LossFn = Callable[[], float]
"""Evaluates the current model; must reflect in-place weight edits."""


@dataclass
class LayerSensitivity:
    """Loss response of one layer across probe rates."""

    name: str
    rates: List[float]
    losses: List[float]
    baseline_loss: float

    def degradation_at(self, rate: float) -> float:
        """Loss increase at the probe rate closest to ``rate``."""
        index = int(np.argmin([abs(r - rate) for r in self.rates]))
        return self.losses[index] - self.baseline_loss

    @property
    def mean_degradation(self) -> float:
        """Average loss increase across all probe rates."""
        return float(np.mean([l - self.baseline_loss for l in self.losses]))


@dataclass
class SensitivityReport:
    """Sensitivity profile over all probed layers."""

    baseline_loss: float
    layers: List[LayerSensitivity] = field(default_factory=list)

    def ranking(self) -> List[str]:
        """Layer names, most sensitive first."""
        return [
            layer.name
            for layer in sorted(
                self.layers, key=lambda l: l.mean_degradation, reverse=True
            )
        ]


def probe_sensitivity(
    named_params: Dict[str, Parameter],
    loss_fn: LossFn,
    rates: Sequence[float] = (2.0, 4.0, 8.0),
    num_row_strips: int = 4,
    num_col_blocks: int = 4,
) -> SensitivityReport:
    """Measure each layer's loss under solo BSP-style column-block pruning.

    For every layer and probe rate: project, zero the pruned weights,
    evaluate ``loss_fn``, restore the weights exactly.  The model is
    unchanged on return.
    """
    if not named_params:
        raise ConfigError("probe_sensitivity needs at least one parameter")
    if not rates or any(r < 1.0 for r in rates):
        raise ConfigError(f"rates must be >= 1, got {list(rates)}")
    baseline = loss_fn()
    report = SensitivityReport(baseline_loss=baseline)
    for name, param in named_params.items():
        original = param.data.copy()
        grid = grid_for(param.data, num_row_strips, num_col_blocks)
        losses = []
        for rate in rates:
            mask = project_block_columns(original, grid, rate)
            param.data[...] = mask.apply_to_array(original)
            losses.append(loss_fn())
            param.data[...] = original
        report.layers.append(
            LayerSensitivity(
                name=name, rates=list(rates), losses=losses,
                baseline_loss=baseline,
            )
        )
    return report


def allocate_rates(
    report: SensitivityReport,
    named_sizes: Dict[str, int],
    target_rate: float,
    min_rate: float = 1.0,
    max_rate: float = 64.0,
) -> Dict[str, float]:
    """Turn a sensitivity profile into per-layer rates meeting a global
    compression target.

    Layers get keep-budgets proportional to ``1 + mean_degradation`` (more
    sensitive → keep more), scaled so the *total* kept parameters equal
    ``total / target_rate``, then clamped to ``[min_rate, max_rate]``.
    """
    if target_rate < 1.0:
        raise ConfigError(f"target_rate must be >= 1, got {target_rate}")
    names = [layer.name for layer in report.layers]
    missing = [n for n in names if n not in named_sizes]
    if missing:
        raise ConfigError(f"named_sizes missing entries for {missing}")
    total = sum(named_sizes[n] for n in names)
    budget = total / target_rate
    sensitivities = np.array(
        [max(0.0, layer.mean_degradation) for layer in report.layers]
    )
    weights = 1.0 + sensitivities
    weights = weights / weights.sum()
    rates: Dict[str, float] = {}
    for layer, weight in zip(report.layers, weights):
        keep = max(1.0, weight * budget)
        rate = named_sizes[layer.name] / keep
        rates[layer.name] = float(np.clip(rate, min_rate, max_rate))
    return rates


def sensitivity_configs(
    rates: Dict[str, float],
    base: Optional[BSPConfig] = None,
) -> Dict[str, BSPConfig]:
    """Per-layer BSP configs from a per-layer rate allocation."""
    base = base or BSPConfig()
    configs = {}
    for name, rate in rates.items():
        configs[name] = BSPConfig(
            col_rate=max(1.0, rate),
            row_rate=1.0,
            num_row_strips=base.num_row_strips,
            num_col_blocks=base.num_col_blocks,
            rho=base.rho,
            step1_admm_epochs=base.step1_admm_epochs,
            step1_retrain_epochs=base.step1_retrain_epochs,
            step2_admm_epochs=0,
            step2_retrain_epochs=0,
            ramp=base.ramp,
        )
    return configs
