"""Speech-recognition substrate: synthetic corpus, features, model, PER."""

from repro.speech.augment import (
    AugmentConfig,
    add_noise,
    augment_dataset,
    spec_mask,
    spectral_tilt,
    time_warp,
)
from repro.speech.decoder import (
    IncrementalDecoder,
    decode_batch,
    decode_utterance,
    greedy_frame_labels,
)
from repro.speech.features import (
    FeatureConfig,
    StreamingFrontend,
    add_deltas,
    log_mel_spectrogram,
    mel_filterbank,
    mfcc,
)
from repro.speech.metrics import (
    collapse_frames,
    frame_accuracy,
    levenshtein,
    per_from_frames,
    phone_error_rate,
)
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.phones import (
    ALL_LABELS,
    FOLDED_PHONES,
    NUM_CLASSES,
    SILENCE,
    SILENCE_ID,
    id_to_phone,
    phone_to_id,
)
from repro.speech.synth import (
    SynthConfig,
    make_corpus,
    make_dataset,
    phone_prototypes,
    synth_utterance,
    synth_waveform,
    waveform_example,
)
from repro.speech.trainer import EvalResult, Trainer, TrainerConfig

__all__ = [
    "SynthConfig",
    "make_dataset",
    "make_corpus",
    "phone_prototypes",
    "synth_utterance",
    "synth_waveform",
    "waveform_example",
    "FeatureConfig",
    "StreamingFrontend",
    "log_mel_spectrogram",
    "mfcc",
    "mel_filterbank",
    "add_deltas",
    "AcousticModelConfig",
    "GRUAcousticModel",
    "Trainer",
    "TrainerConfig",
    "EvalResult",
    "decode_utterance",
    "decode_batch",
    "greedy_frame_labels",
    "IncrementalDecoder",
    "levenshtein",
    "phone_error_rate",
    "collapse_frames",
    "frame_accuracy",
    "per_from_frames",
    "NUM_CLASSES",
    "SILENCE",
    "SILENCE_ID",
    "ALL_LABELS",
    "FOLDED_PHONES",
    "id_to_phone",
    "phone_to_id",
    "AugmentConfig",
    "augment_dataset",
    "add_noise",
    "spectral_tilt",
    "time_warp",
    "spec_mask",
]
