"""Phone error rate (PER) and the edit distance underlying it.

PER is the Levenshtein distance between the reference and hypothesis phone
sequences (after collapsing frame labels to segment sequences and removing
silence) divided by the reference length — the scoring convention of every
system in the paper's Table I.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.speech.phones import SILENCE_ID


def levenshtein(reference: Sequence, hypothesis: Sequence) -> int:
    """Edit distance (substitution/insertion/deletion, all cost 1)."""
    ref = list(reference)
    hyp = list(hypothesis)
    if not ref:
        return len(hyp)
    if not hyp:
        return len(ref)
    previous = np.arange(len(hyp) + 1)
    for i, r in enumerate(ref, start=1):
        current = np.empty(len(hyp) + 1, dtype=np.int64)
        current[0] = i
        for j, h in enumerate(hyp, start=1):
            cost = 0 if r == h else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution / match
            )
        previous = current
    return int(previous[-1])


def collapse_frames(frame_labels: Sequence[int], drop: int = SILENCE_ID) -> List[int]:
    """Frame labels → segment sequence: merge runs, drop ``drop`` symbols.

    ``[sil, aa, aa, aa, sil, t, t] → [aa, t]``

    Vectorized: run starts come from ``np.diff`` (the same run-boundary
    trick as :func:`repro.speech.decoder.smooth_labels`), then the
    ``drop`` symbol is filtered from the per-run labels.
    """
    labels = np.asarray(frame_labels, dtype=np.int64).reshape(-1)
    if labels.size == 0:
        return []
    starts = np.concatenate(([0], np.flatnonzero(np.diff(labels)) + 1))
    run_labels = labels[starts]
    return run_labels[run_labels != drop].tolist()


def phone_error_rate(
    references: Sequence[Sequence[int]], hypotheses: Sequence[Sequence[int]]
) -> float:
    """Corpus-level PER over already-collapsed phone sequences.

    Total edit distance divided by total reference length, as a percentage.
    """
    if len(references) != len(hypotheses):
        raise ValueError(
            f"got {len(references)} references but {len(hypotheses)} hypotheses"
        )
    total_distance = 0
    total_length = 0
    for ref, hyp in zip(references, hypotheses):
        total_distance += levenshtein(ref, hyp)
        total_length += len(ref)
    if total_length == 0:
        return 0.0
    return 100.0 * total_distance / total_length


def frame_accuracy(
    labels: np.ndarray, predictions: np.ndarray, mask: np.ndarray
) -> float:
    """Fraction of unpadded frames classified correctly."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    mask = np.asarray(mask, dtype=bool)
    if labels.shape != predictions.shape or labels.shape != mask.shape:
        raise ValueError(
            f"shape mismatch: labels {labels.shape}, predictions "
            f"{predictions.shape}, mask {mask.shape}"
        )
    total = mask.sum()
    if total == 0:
        return 0.0
    return float(((labels == predictions) & mask).sum() / total)


def per_from_frames(
    frame_references: Sequence[Sequence[int]],
    frame_hypotheses: Sequence[Sequence[int]],
) -> Tuple[float, List[List[int]], List[List[int]]]:
    """PER from per-frame label sequences; returns (per, refs, hyps)."""
    refs = [collapse_frames(r) for r in frame_references]
    hyps = [collapse_frames(h) for h in frame_hypotheses]
    return phone_error_rate(refs, hyps), refs, hyps
