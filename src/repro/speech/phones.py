"""A TIMIT-like phone inventory.

TIMIT is annotated with 61 phones that are conventionally folded to 39 for
scoring (Lee & Hon, 1989); PER is computed on the folded set.  The real
corpus is LDC-licensed and unavailable offline, so the synthetic corpus in
:mod:`repro.speech.synth` uses this 39-phone folded inventory directly,
plus a silence symbol that scoring ignores.
"""

from __future__ import annotations

from typing import Dict, List

#: Folded 39-phone inventory used for scoring TIMIT phone recognition.
FOLDED_PHONES: List[str] = [
    "iy", "ih", "eh", "ae", "ah", "uw", "uh", "aa", "ey", "ay",
    "oy", "aw", "ow", "er", "l", "r", "w", "y", "m", "n",
    "ng", "v", "f", "dh", "th", "z", "s", "zh", "jh", "ch",
    "b", "p", "d", "t", "g", "k", "hh", "dx", "q",
]

#: Silence / non-speech symbol; present in frame labels, ignored by PER.
SILENCE = "sil"

#: Full label set: silence is index 0, phones follow in inventory order.
ALL_LABELS: List[str] = [SILENCE] + FOLDED_PHONES

#: Number of output classes of the acoustic model.
NUM_CLASSES: int = len(ALL_LABELS)

#: Index of the silence label.
SILENCE_ID: int = 0

#: Name → class index.
PHONE_TO_ID: Dict[str, int] = {name: i for i, name in enumerate(ALL_LABELS)}


def id_to_phone(index: int) -> str:
    """Class index → phone name."""
    return ALL_LABELS[index]


def phone_to_id(name: str) -> int:
    """Phone name → class index (raises ``KeyError`` for unknown names)."""
    return PHONE_TO_ID[name]
