"""Training and evaluation of the GRU acoustic model, with pruning hooks.

:class:`Trainer` owns the optimization loop and speaks the
:class:`~repro.pruning.base.PruningMethod` protocol, so dense training,
BSP (ADMM), and every baseline run through the same code path — mirroring
how the paper trains all Table I entries "using the same TIMIT dataset".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.data import Batch, DataLoader, Dataset, collate
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.pruning.base import PruningMethod
from repro.speech.decoder import decode_batch
from repro.speech.metrics import collapse_frames, frame_accuracy, phone_error_rate
from repro.speech.model import GRUAcousticModel
from repro.utils.rng import RngLike, derive_seed, new_rng


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization settings."""

    learning_rate: float = 3e-3
    batch_size: int = 8
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.grad_clip <= 0:
            raise ConfigError(f"grad_clip must be positive, got {self.grad_clip}")


@dataclass
class EvalResult:
    """Evaluation outcome on a dataset."""

    per: float  # phone error rate, percent
    frame_accuracy: float  # fraction of frames classified correctly
    num_utterances: int


@dataclass
class TrainLog:
    """Per-epoch training trace."""

    losses: List[float] = field(default_factory=list)

    def append(self, loss: float) -> None:
        self.losses.append(loss)

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None


class Trainer:
    """Adam training loop for :class:`GRUAcousticModel` with pruning hooks."""

    def __init__(
        self,
        model: GRUAcousticModel,
        train_set: Dataset,
        test_set: Dataset,
        config: TrainerConfig = TrainerConfig(),
    ) -> None:
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.config = config
        self.optimizer = Adam(model.parameters(), lr=config.learning_rate)
        self.log = TrainLog()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Completed-epoch counter; settable so a checkpoint restore can
        reposition the deterministic per-epoch shuffle."""
        return self._epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        if value < 0:
            raise ConfigError(f"epoch must be >= 0, got {value}")
        self._epoch = int(value)

    # -- single steps ---------------------------------------------------------
    def _batch_loss(self, batch: Batch) -> Tensor:
        logits = self.model(Tensor(batch.features))
        t, b, c = logits.shape
        return F.cross_entropy(
            logits.reshape(t * b, c),
            batch.labels.reshape(-1),
            weight_mask=batch.mask.reshape(-1),
        )

    def _clip_gradients(self) -> None:
        limit = self.config.grad_clip
        params = [p for p in self.model.parameters() if p.grad is not None]
        # vdot flattens and accumulates in one BLAS call per array — no
        # squared temporary per parameter.
        norm = np.sqrt(sum(float(np.vdot(p.grad, p.grad)) for p in params))
        if norm > limit:
            scale = limit / norm
            for param in params:
                param.grad *= scale

    def epoch_order(self) -> np.ndarray:
        """The example order of the *current* epoch.

        A pure function of ``(config.seed, epoch)`` — the same seeded
        shuffle :class:`~repro.nn.data.DataLoader` would apply — so any
        process (a resumed trainer, a distributed gradient worker) can
        reconstruct exactly which utterances the Nth step of epoch E
        trains on.
        """
        indices = np.arange(len(self.train_set))
        new_rng(derive_seed(self.config.seed, self._epoch)).shuffle(indices)
        return indices

    def steps_per_epoch(self) -> int:
        n = len(self.train_set)
        return (n + self.config.batch_size - 1) // self.config.batch_size

    def _backward_on_batch(self, indices: np.ndarray) -> float:
        """Forward/backward one minibatch; leaves gradients on the model.

        The distributed trainer overrides this seam to shard ``indices``
        across gradient workers; everything around it (pruning hooks,
        clipping, the optimizer step) stays parent-side and identical.
        """
        batch = collate([self.train_set[int(i)] for i in indices])
        loss = self._batch_loss(batch)
        loss.backward()
        return float(loss.data)

    def train_epoch(
        self,
        method: Optional[PruningMethod] = None,
        *,
        start_step: int = 0,
        prior_losses: Optional[List[float]] = None,
        on_step: Optional[Callable[[int, List[float]], None]] = None,
    ) -> float:
        """One pass over the training set; returns the mean batch loss.

        On vectorized kernel backends (the default) every batch runs
        through the fused training fast path: each recurrent layer is one
        ``gru_sequence_grad`` forward + single-BPTT-backward kernel call
        (see ``docs/training.md``), so dense training and every
        ADMM/prune→retrain phase share the same accelerated loop.  Under
        ``kernels.use_backend("reference")`` the per-timestep autograd
        tape is used instead.

        Step-granular resume: ``start_step`` skips that many leading
        batches (already trained before a checkpoint), ``prior_losses``
        re-seeds their recorded losses so the epoch mean is unchanged,
        and ``on_step(completed_steps, losses)`` fires after each
        optimizer step at a consistent state point — this is where the
        checkpoint writer hooks in.  Because the batch order is the
        deterministic :meth:`epoch_order`, a resumed epoch continues
        bit-identically.
        """
        if start_step and len(prior_losses or ()) != start_step:
            raise ConfigError(
                f"resume at step {start_step} needs exactly that many "
                f"prior losses, got {len(prior_losses or ())}"
            )
        self.model.train()
        order = self.epoch_order()
        batch_size = self.config.batch_size
        losses = list(prior_losses) if prior_losses else []
        for step, start in enumerate(range(0, len(order), batch_size)):
            if step < start_step:
                continue
            indices = order[start : start + batch_size]
            self.optimizer.zero_grad()
            loss = self._backward_on_batch(indices)
            if method is not None:
                method.on_batch_backward()
            self._clip_gradients()
            self.optimizer.step()
            if method is not None:
                method.on_batch_end()
            losses.append(loss)
            if on_step is not None:
                on_step(step + 1, losses)
        if method is not None:
            method.on_epoch_end()
        self._epoch += 1
        mean_loss = float(np.mean(losses)) if losses else 0.0
        self.log.append(mean_loss)
        return mean_loss

    # -- drivers --------------------------------------------------------------
    def train_dense(self, epochs: int) -> float:
        """Ordinary dense training for ``epochs``; returns final mean loss."""
        loss = 0.0
        for _ in range(epochs):
            loss = self.train_epoch()
        return loss

    def run_pruning(self, method: PruningMethod, max_epochs: int = 100) -> int:
        """Train until ``method.finished`` (or ``max_epochs``); returns epochs."""
        epochs = 0
        while not method.finished and epochs < max_epochs:
            self.train_epoch(method)
            epochs += 1
        return epochs

    # -- evaluation -------------------------------------------------------
    def evaluate(
        self, dataset: Optional[Dataset] = None, min_duration: int = 2
    ) -> EvalResult:
        """PER and frame accuracy on ``dataset`` (default: the test set).

        Runs the model in eval mode, so the recurrent layers take the
        fused no-grad fast path through :mod:`repro.kernels`; the previous
        train/eval mode is restored afterwards.
        """
        dataset = dataset if dataset is not None else self.test_set
        was_training = self.model.training
        self.model.eval()
        loader = DataLoader(
            dataset, batch_size=self.config.batch_size, shuffle=False
        )
        references: List[List[int]] = []
        hypotheses: List[List[int]] = []
        correct_frames = 0.0
        total_frames = 0
        try:
            for batch in loader:
                logits = self.model(Tensor(batch.features)).data
                hypotheses.extend(decode_batch(logits, batch.lengths, min_duration))
                predictions = logits.argmax(axis=2)
                correct_frames += frame_accuracy(
                    batch.labels, predictions, batch.mask
                ) * batch.num_frames()
                total_frames += batch.num_frames()
                for b, length in enumerate(batch.lengths):
                    references.append(collapse_frames(batch.labels[:length, b]))
        finally:
            if was_training:
                self.model.train()
        per = phone_error_rate(references, hypotheses)
        acc = correct_frames / total_frames if total_frames else 0.0
        return EvalResult(per=per, frame_accuracy=acc, num_utterances=len(dataset))
