"""Acoustic front-end: framing, mel filterbank, MFCC.

The paper's pipeline (PyTorch-Kaldi) consumes standard frame-level acoustic
features.  This module implements the classic chain — pre-emphasis, Hamming
windowing, magnitude FFT, triangular mel filterbank, log compression,
optional DCT to MFCC — so the synthetic corpus can be rendered to waveforms
and featurized exactly like real speech would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigError, StreamError


def hz_to_mel(hz) -> np.ndarray:
    """Hertz → mel (O'Shaughnessy formula)."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel) -> np.ndarray:
    """Mel → hertz (inverse of :func:`hz_to_mel`)."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


@lru_cache(maxsize=32)
def _cached_filterbank(
    num_filters: int, fft_size: int, sample_rate: int, fmin: float, fmax: float
) -> np.ndarray:
    """Build (and memoize) one filterbank; the returned array is read-only.

    Construction is fully vectorized: the per-filter rising/falling ramps
    of the original nested loops become two broadcast expressions over a
    ``(num_filters, num_bins)`` grid, masked to each filter's support —
    the same integer-ratio values, computed without Python-level loops.
    """
    if num_filters < 1:
        raise ConfigError(f"num_filters must be >= 1, got {num_filters}")
    if not 0 <= fmin < fmax <= sample_rate / 2.0:
        raise ConfigError(f"need 0 <= fmin < fmax <= nyquist, got {fmin}, {fmax}")
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), num_filters + 2)
    hz_points = mel_to_hz(mel_points)
    bins = np.floor((fft_size + 1) * hz_points / sample_rate).astype(int)
    left = bins[:-2, None]
    center = np.maximum(bins[1:-1], bins[:-2] + 1)[:, None]
    right = np.maximum(bins[2:, None], center + 1)
    k = np.arange(fft_size // 2 + 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        rising = (k - left) / (center - left)
        falling = (right - k) / (right - center)
    bank = np.where(
        (k >= left) & (k < center),
        rising,
        np.where((k >= center) & (k < right), falling, 0.0),
    )
    bank.flags.writeable = False
    return bank


def mel_filterbank(
    num_filters: int, fft_size: int, sample_rate: int, fmin: float = 0.0, fmax: float = None
) -> np.ndarray:
    """Triangular mel filterbank matrix of shape ``(num_filters, fft_size//2+1)``.

    Banks are cached per parameter set; callers get a fresh writable copy.
    """
    fmax = float(fmax) if fmax is not None else sample_rate / 2.0
    return _cached_filterbank(
        num_filters, fft_size, sample_rate, float(fmin), fmax
    ).copy()


@lru_cache(maxsize=8)
def _cached_window(frame_length: int) -> np.ndarray:
    """Memoized Hamming window (read-only)."""
    window = np.hamming(frame_length)
    window.flags.writeable = False
    return window


def frame_signal(
    signal: np.ndarray, frame_length: int, hop_length: int
) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames ``(num_frames, frame_length)``.

    The tail is zero-padded so every sample is covered.  Frames are a
    strided (read-only) view into one padded copy of the signal — no
    per-frame slicing or stacking.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ConfigError(f"signal must be 1-D, got shape {signal.shape}")
    if frame_length < 1 or hop_length < 1:
        raise ConfigError("frame_length and hop_length must be >= 1")
    if len(signal) == 0:
        return np.zeros((0, frame_length))
    num_frames = max(1, 1 + int(np.ceil((len(signal) - frame_length) / hop_length)))
    padded = np.zeros((num_frames - 1) * hop_length + frame_length)
    padded[: len(signal)] = signal
    return sliding_window_view(padded, frame_length)[::hop_length]


def dct_matrix(num_coefficients: int, num_inputs: int) -> np.ndarray:
    """Type-II DCT basis (orthonormal), shape ``(num_coefficients, num_inputs)``."""
    n = np.arange(num_inputs)
    k = np.arange(num_coefficients)[:, None]
    basis = np.cos(np.pi * k * (2 * n + 1) / (2 * num_inputs))
    basis *= np.sqrt(2.0 / num_inputs)
    basis[0] /= np.sqrt(2.0)
    return basis


@dataclass(frozen=True)
class FeatureConfig:
    """Front-end settings (defaults match common 16 kHz ASR recipes)."""

    sample_rate: int = 16000
    frame_length: int = 400  # 25 ms
    hop_length: int = 160  # 10 ms
    fft_size: int = 512
    num_mels: int = 40
    num_mfcc: int = 13
    preemphasis: float = 0.97
    log_floor: float = 1e-10

    def __post_init__(self) -> None:
        if self.fft_size < self.frame_length:
            raise ConfigError(
                f"fft_size ({self.fft_size}) must be >= frame_length "
                f"({self.frame_length})"
            )


def _frames_to_log_mel(frames: np.ndarray, config: FeatureConfig) -> np.ndarray:
    """Emphasized frames ``(T, frame_length)`` → log-mel ``(T, num_mels)``.

    The shared per-frame pipeline of the offline and streaming front
    ends.  Every op here is *row-stable*: windowing and log are
    elementwise, ``rfft`` transforms each row independently, and the mel
    projection runs through ``np.einsum`` (fixed per-element reduction
    order) rather than BLAS — whose reduction order varies with the
    number of rows — so a frame's features are bit-identical whether it
    is featurized alone, inside a chunk, or inside the whole utterance.
    That is what lets :class:`StreamingFrontend` be bit-exact with
    :func:`log_mel_spectrogram`.
    """
    window = _cached_window(config.frame_length)
    spectrum = np.abs(np.fft.rfft(frames * window, n=config.fft_size)) ** 2
    bank = _cached_filterbank(
        config.num_mels, config.fft_size, config.sample_rate,
        0.0, config.sample_rate / 2.0,
    )
    mel_energy = np.einsum("tf,mf->tm", spectrum, bank, optimize=False)
    return np.log(np.maximum(mel_energy, config.log_floor))


def log_mel_spectrogram(signal: np.ndarray, config: FeatureConfig = FeatureConfig()) -> np.ndarray:
    """Waveform → log-mel features of shape ``(num_frames, num_mels)``."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.size:
        emphasized = np.append(signal[0], signal[1:] - config.preemphasis * signal[:-1])
    else:
        emphasized = signal
    frames = frame_signal(emphasized, config.frame_length, config.hop_length)
    return _frames_to_log_mel(frames, config)


def mfcc(signal: np.ndarray, config: FeatureConfig = FeatureConfig()) -> np.ndarray:
    """Waveform → MFCC features of shape ``(num_frames, num_mfcc)``."""
    log_mels = log_mel_spectrogram(signal, config)
    basis = dct_matrix(config.num_mfcc, config.num_mels)
    return log_mels @ basis.T


class StreamingFrontend:
    """Chunked log-mel featurization, **bit-exact** with the offline path.

    Raw audio arrives in arbitrary-size pieces; :meth:`push` returns the
    log-mel features of every frame whose samples have fully arrived and
    :meth:`finish` emits the zero-padded tail frames.  Concatenating all
    returned arrays equals ``log_mel_spectrogram(whole_signal, config)``
    bit for bit, for any split of the signal:

    * the pre-emphasis filter carries its one-sample history across
      pushes (the very first sample passes through unfiltered, exactly
      as offline);
    * the overlap tail — the up to ``frame_length - hop_length``
      emphasized samples shared with future frames — stays buffered until
      the frames that need it are complete;
    * ``finish`` pads the remaining buffer with zeros exactly as
      :func:`frame_signal` pads the full signal (padding happens *after*
      pre-emphasis offline too, so the values match);
    * the per-frame pipeline (:func:`_frames_to_log_mel`) is row-stable,
      so emitting frames in different batches cannot change their bits.
    """

    def __init__(self, config: FeatureConfig = FeatureConfig()) -> None:
        self.config = config
        self._buffer = np.zeros(0)  # emphasized samples not yet fully consumed
        self._prev_sample: Optional[float] = None  # pre-emphasis carry
        self._samples = 0  # raw samples received
        self._frames = 0  # frames emitted so far
        self._finished = False

    @property
    def samples_received(self) -> int:
        return self._samples

    @property
    def frames_emitted(self) -> int:
        return self._frames

    def _check_open(self) -> None:
        if self._finished:
            raise StreamError("frontend already finished; open a new one")

    def push(self, samples: np.ndarray) -> np.ndarray:
        """Feed raw samples; returns features ``(k, num_mels)``, k >= 0."""
        self._check_open()
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ConfigError(f"samples must be 1-D, got shape {samples.shape}")
        if samples.size:
            emphasized = np.empty_like(samples)
            first = samples[0] if self._prev_sample is None else (
                samples[0] - self.config.preemphasis * self._prev_sample
            )
            emphasized[0] = first
            emphasized[1:] = samples[1:] - self.config.preemphasis * samples[:-1]
            self._prev_sample = float(samples[-1])
            self._samples += samples.size
            self._buffer = np.concatenate([self._buffer, emphasized])
        frame_len, hop = self.config.frame_length, self.config.hop_length
        ready = (
            0 if self._samples < frame_len
            else (self._samples - frame_len) // hop + 1
        )
        count = ready - self._frames
        if count <= 0:
            return np.zeros((0, self.config.num_mels))
        frames = sliding_window_view(self._buffer, frame_len)[: count * hop : hop]
        features = _frames_to_log_mel(frames, self.config)
        self._frames += count
        self._buffer = self._buffer[count * hop :].copy()  # release the base
        return features

    def finish(self) -> np.ndarray:
        """Emit the zero-padded tail frames; the frontend closes."""
        self._check_open()
        self._finished = True
        frame_len, hop = self.config.frame_length, self.config.hop_length
        if self._samples == 0:
            return np.zeros((0, self.config.num_mels))
        total = max(1, 1 + int(np.ceil((self._samples - frame_len) / hop)))
        count = total - self._frames
        if count <= 0:
            return np.zeros((0, self.config.num_mels))
        padded = np.zeros((count - 1) * hop + frame_len)
        padded[: len(self._buffer)] = self._buffer
        frames = sliding_window_view(padded, frame_len)[::hop][:count]
        features = _frames_to_log_mel(frames, self.config)
        self._frames += count
        self._buffer = np.zeros(0)
        return features


def add_deltas(features: np.ndarray) -> np.ndarray:
    """Append first-order deltas (simple ±1-frame differences), doubling dims."""
    features = np.asarray(features)
    if features.ndim != 2:
        raise ConfigError(f"features must be (T, D), got {features.shape}")
    if len(features) < 2:
        deltas = np.zeros_like(features)
    else:
        padded = np.vstack([features[:1], features, features[-1:]])
        deltas = (padded[2:] - padded[:-2]) / 2.0
    return np.hstack([features, deltas])
