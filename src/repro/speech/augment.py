"""Feature-space data augmentation for the synthetic corpus.

Robust training helpers in the style ASR recipes use: additive noise,
spectral tilt (channel simulation), time warping (frame repeat/drop), and
SpecAugment-style time/frequency masking.  All operate on
:class:`~repro.nn.data.SequenceExample` feature matrices and are seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.nn.data import Dataset, SequenceExample
from repro.utils.rng import RngLike, new_rng, spawn_rngs


def add_noise(
    example: SequenceExample, level: float, rng: RngLike = None
) -> SequenceExample:
    """Add white Gaussian noise of standard deviation ``level``."""
    if level < 0:
        raise ConfigError(f"level must be >= 0, got {level}")
    rng = new_rng(rng)
    noisy = example.features + level * rng.standard_normal(example.features.shape)
    return SequenceExample(features=noisy, labels=example.labels.copy())


def spectral_tilt(
    example: SequenceExample, strength: float, rng: RngLike = None
) -> SequenceExample:
    """Apply a random linear spectral tilt (simulates channel response)."""
    if strength < 0:
        raise ConfigError(f"strength must be >= 0, got {strength}")
    rng = new_rng(rng)
    dims = example.features.shape[1]
    slope = rng.normal(0, strength)
    tilt = slope * (np.arange(dims) - dims / 2) / dims
    return SequenceExample(
        features=example.features + tilt[None, :], labels=example.labels.copy()
    )


def time_warp(
    example: SequenceExample, max_stretch: float = 0.2, rng: RngLike = None
) -> SequenceExample:
    """Randomly repeat or drop frames, changing speaking rate ±``max_stretch``.

    Labels are warped with their frames, so alignment is preserved.
    """
    if not 0.0 <= max_stretch < 1.0:
        raise ConfigError(f"max_stretch must be in [0, 1), got {max_stretch}")
    rng = new_rng(rng)
    factor = 1.0 + rng.uniform(-max_stretch, max_stretch)
    length = len(example)
    new_length = max(2, int(round(length * factor)))
    positions = np.clip(
        np.round(np.linspace(0, length - 1, new_length)).astype(int), 0, length - 1
    )
    return SequenceExample(
        features=example.features[positions], labels=example.labels[positions]
    )


def spec_mask(
    example: SequenceExample,
    max_time_frames: int = 4,
    max_freq_bins: int = 6,
    fill_value: float = 0.0,
    rng: RngLike = None,
) -> SequenceExample:
    """SpecAugment-style masking: one time block and one frequency block."""
    if max_time_frames < 0 or max_freq_bins < 0:
        raise ConfigError("mask sizes must be >= 0")
    rng = new_rng(rng)
    features = example.features.copy()
    frames, bins = features.shape
    if max_time_frames > 0 and frames > 1:
        width = int(rng.integers(1, min(max_time_frames, frames) + 1))
        start = int(rng.integers(0, frames - width + 1))
        features[start : start + width, :] = fill_value
    if max_freq_bins > 0 and bins > 1:
        width = int(rng.integers(1, min(max_freq_bins, bins) + 1))
        start = int(rng.integers(0, bins - width + 1))
        features[:, start : start + width] = fill_value
    return SequenceExample(features=features, labels=example.labels.copy())


@dataclass(frozen=True)
class AugmentConfig:
    """Which augmentations to apply when expanding a dataset."""

    noise_level: float = 0.1
    tilt_strength: float = 0.15
    max_stretch: float = 0.15
    use_spec_mask: bool = True


def augment_dataset(
    dataset: Dataset,
    copies: int = 1,
    config: AugmentConfig = AugmentConfig(),
    rng: RngLike = 0,
) -> Dataset:
    """Return the dataset plus ``copies`` independently augmented copies.

    Each augmented example passes through noise → tilt → time-warp
    (→ spec-mask), each with its own derived RNG stream.
    """
    if copies < 0:
        raise ConfigError(f"copies must be >= 0, got {copies}")
    examples: List[SequenceExample] = list(dataset.examples)
    streams = spawn_rngs(rng, copies * len(dataset))
    index = 0
    for _ in range(copies):
        for example in dataset.examples:
            stream = streams[index]
            index += 1
            out = add_noise(example, config.noise_level, stream)
            out = spectral_tilt(out, config.tilt_strength, stream)
            out = time_warp(out, config.max_stretch, stream)
            if config.use_spec_mask:
                out = spec_mask(out, rng=stream)
            examples.append(out)
    return Dataset(examples)
