"""Synthetic TIMIT-like phone recognition corpus.

The real TIMIT corpus is LDC-licensed and unavailable offline, so the
experiments run on a controllable synthetic substitute that preserves the
*task structure* PER-vs-compression experiments depend on (see DESIGN.md):

* every phone has a fixed spectral prototype (a smooth random envelope
  over the mel bands, plus formant-like peaks) shared by all utterances,
* an utterance is a random phone sequence; each phone holds for a sampled
  duration, with short linear cross-fades at boundaries (coarticulation),
* speaker variability (per-utterance spectral tilt and gain) and additive
  observation noise control task difficulty through ``noise_level`` —
  harder tasks degrade faster under pruning, like real acoustic models,
* frame labels mark the dominant phone of each frame, with silence padding
  at the edges, matching TIMIT's time-aligned annotation.

Two rendering paths are provided: ``features`` (direct mel-domain frames —
fast, the default for training sweeps) and ``waveform`` (sum-of-formant
sinusoids at 16 kHz to exercise the full :mod:`repro.speech.features`
front-end, used by the waveform example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.data import Dataset, SequenceExample
from repro.speech.features import FeatureConfig, log_mel_spectrogram
from repro.speech.phones import NUM_CLASSES, SILENCE_ID
from repro.utils.rng import RngLike, new_rng, spawn_rngs


@dataclass(frozen=True)
class SynthConfig:
    """Corpus-generation settings."""

    num_mels: int = 40
    min_phones: int = 4
    max_phones: int = 12
    min_duration: int = 3  # frames a phone holds
    max_duration: int = 8
    silence_frames: int = 2  # leading/trailing silence
    noise_level: float = 0.35  # observation-noise std (task difficulty)
    speaker_tilt: float = 0.25  # per-utterance spectral tilt std
    coarticulation: int = 1  # boundary cross-fade frames (each side)
    prototype_seed: int = 7321  # fixed so train/test share acoustics

    def __post_init__(self) -> None:
        if self.num_mels < 4:
            raise ConfigError(f"num_mels must be >= 4, got {self.num_mels}")
        if not 1 <= self.min_phones <= self.max_phones:
            raise ConfigError("need 1 <= min_phones <= max_phones")
        if not 1 <= self.min_duration <= self.max_duration:
            raise ConfigError("need 1 <= min_duration <= max_duration")
        if self.noise_level < 0 or self.speaker_tilt < 0:
            raise ConfigError("noise_level and speaker_tilt must be >= 0")
        if self.silence_frames < 0 or self.coarticulation < 0:
            raise ConfigError("silence_frames and coarticulation must be >= 0")


def phone_prototypes(config: SynthConfig = SynthConfig()) -> np.ndarray:
    """Deterministic ``(NUM_CLASSES, num_mels)`` spectral prototypes.

    Each phone gets a smooth random envelope plus 2-3 formant-like peaks at
    phone-specific mel positions; silence is a low-energy flat spectrum.
    The prototype RNG is seeded by ``prototype_seed`` only, so every
    dataset drawn from the same config shares identical acoustics.
    """
    rng = new_rng(config.prototype_seed)
    mels = np.arange(config.num_mels)
    prototypes = np.zeros((NUM_CLASSES, config.num_mels))
    for phone in range(NUM_CLASSES):
        if phone == SILENCE_ID:
            prototypes[phone] = -2.0 + 0.05 * rng.standard_normal(config.num_mels)
            continue
        # Smooth envelope: a few low-frequency cosine components.
        envelope = np.zeros(config.num_mels)
        for harmonic in range(1, 4):
            envelope += rng.normal(0, 1.0 / harmonic) * np.cos(
                np.pi * harmonic * mels / config.num_mels + rng.uniform(0, np.pi)
            )
        # Formant peaks: gaussian bumps at phone-specific positions.
        num_formants = int(rng.integers(2, 4))
        for _ in range(num_formants):
            center = rng.uniform(0, config.num_mels)
            width = rng.uniform(1.5, 4.0)
            height = rng.uniform(1.0, 2.5)
            envelope += height * np.exp(-0.5 * ((mels - center) / width) ** 2)
        prototypes[phone] = envelope
    return prototypes


def synth_utterance(
    config: SynthConfig, prototypes: np.ndarray, rng: np.random.Generator
) -> SequenceExample:
    """Draw one utterance: features ``(T, num_mels)`` + frame labels ``(T,)``."""
    num_phones = int(rng.integers(config.min_phones, config.max_phones + 1))
    phones = rng.integers(1, NUM_CLASSES, size=num_phones)  # exclude silence
    durations = rng.integers(
        config.min_duration, config.max_duration + 1, size=num_phones
    )

    labels: List[int] = [SILENCE_ID] * config.silence_frames
    for phone, duration in zip(phones, durations):
        labels.extend([int(phone)] * int(duration))
    labels.extend([SILENCE_ID] * config.silence_frames)
    labels_arr = np.asarray(labels, dtype=np.int64)
    num_frames = len(labels_arr)

    clean = prototypes[labels_arr].copy()
    # Coarticulation: cross-fade frames adjacent to segment boundaries.
    if config.coarticulation > 0:
        boundaries = np.flatnonzero(labels_arr[1:] != labels_arr[:-1]) + 1
        for boundary in boundaries:
            for offset in range(config.coarticulation):
                weight = 0.5 * (1.0 - offset / config.coarticulation) * 0.8
                left = boundary - 1 - offset
                right = boundary + offset
                if left >= 0 and right < num_frames:
                    blend = (1 - weight) * prototypes[labels_arr[left]] + (
                        weight * prototypes[labels_arr[right]]
                    )
                    clean[left] = blend
    # Speaker variability: spectral tilt + gain.
    mels = np.arange(config.num_mels)
    tilt = rng.normal(0, config.speaker_tilt) * (
        (mels - config.num_mels / 2) / config.num_mels
    )
    gain = rng.normal(0, config.speaker_tilt)
    features = clean + tilt[None, :] + gain
    # AR(1) observation noise: temporally correlated like real channels.
    noise = np.zeros_like(features)
    if config.noise_level > 0:
        innovation = rng.standard_normal(features.shape)
        noise[0] = innovation[0]
        for t in range(1, num_frames):
            noise[t] = 0.5 * noise[t - 1] + innovation[t]
        noise *= config.noise_level
    return SequenceExample(features=features + noise, labels=labels_arr)


def make_dataset(
    num_utterances: int,
    config: SynthConfig = SynthConfig(),
    seed: RngLike = 0,
) -> Dataset:
    """Generate a corpus of ``num_utterances`` independent utterances."""
    if num_utterances < 1:
        raise ConfigError(f"num_utterances must be >= 1, got {num_utterances}")
    prototypes = phone_prototypes(config)
    rngs = spawn_rngs(seed, num_utterances)
    return Dataset([synth_utterance(config, prototypes, r) for r in rngs])


def make_corpus(
    num_train: int,
    num_test: int,
    config: SynthConfig = SynthConfig(),
    seed: RngLike = 0,
) -> Tuple[Dataset, Dataset]:
    """Generate disjoint train and test sets sharing the same acoustics."""
    train_rng, test_rng = spawn_rngs(seed, 2)
    return (
        make_dataset(num_train, config, train_rng),
        make_dataset(num_test, config, test_rng),
    )


# ----------------------------------------------------------------------
# Waveform rendering path (exercises the full feature front-end)
# ----------------------------------------------------------------------

def phone_formants(
    config: SynthConfig = SynthConfig(), sample_rate: int = 16000
) -> np.ndarray:
    """Deterministic ``(NUM_CLASSES, 3)`` formant frequencies in Hz."""
    rng = new_rng(config.prototype_seed + 1)
    formants = np.zeros((NUM_CLASSES, 3))
    for phone in range(NUM_CLASSES):
        f1 = rng.uniform(250, 900)
        f2 = rng.uniform(900, 2500)
        f3 = rng.uniform(2500, min(4000, sample_rate / 2 * 0.9))
        formants[phone] = (f1, f2, f3)
    formants[SILENCE_ID] = 0.0
    return formants


def synth_waveform(
    labels: np.ndarray,
    config: SynthConfig = SynthConfig(),
    feature_config: FeatureConfig = FeatureConfig(),
    rng: RngLike = None,
) -> np.ndarray:
    """Render frame labels to a crude formant-synthesis waveform.

    Each frame contributes ``hop_length`` samples: a sum of three sinusoids
    at the frame phone's formant frequencies plus a little noise; silence
    frames are near-silent.  Crude, but spectrally distinct per phone, so
    the full front-end (:func:`log_mel_spectrogram`) recovers separable
    features from it.
    """
    rng = new_rng(rng)
    labels = np.asarray(labels, dtype=np.int64)
    formants = phone_formants(config, feature_config.sample_rate)
    hop = feature_config.hop_length
    samples = np.zeros(len(labels) * hop)
    time_index = np.arange(hop)
    for frame, phone in enumerate(labels):
        start = frame * hop
        t = (start + time_index) / feature_config.sample_rate
        if phone == SILENCE_ID:
            chunk = 0.001 * rng.standard_normal(hop)
        else:
            chunk = np.zeros(hop)
            for k, freq in enumerate(formants[phone]):
                chunk += (0.5 / (k + 1)) * np.sin(2 * np.pi * freq * t)
            chunk += 0.01 * rng.standard_normal(hop)
        samples[start : start + hop] = chunk
    return samples


def waveform_example(
    config: SynthConfig = SynthConfig(),
    feature_config: FeatureConfig = FeatureConfig(),
    seed: RngLike = 0,
) -> Tuple[np.ndarray, SequenceExample]:
    """One utterance rendered via waveform + front-end features.

    Returns ``(waveform, example)`` where the example's features come from
    :func:`log_mel_spectrogram` (truncated/padded to the label length).
    """
    rng = new_rng(seed)
    prototypes = phone_prototypes(config)
    base = synth_utterance(config, prototypes, rng)
    waveform = synth_waveform(base.labels, config, feature_config, rng)
    feats = log_mel_spectrogram(waveform, feature_config)
    frames = min(len(feats), len(base.labels))
    return waveform, SequenceExample(
        features=feats[:frames], labels=base.labels[:frames]
    )
