"""The GRU acoustic model of the paper's evaluation.

The paper's model is a 2-layer GRU with ~9.6M parameters trained on TIMIT;
:class:`GRUAcousticModel` is the same architecture with configurable width
(the experiments default to a laptop-scale width and document the scaling).
The prunable surface — what BSP and every baseline compress — is the set
of 2-D GRU weight matrices (``weight_ih``/``weight_hh`` of each layer),
exposed by :meth:`prunable_parameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.rnn import GRU
from repro.nn.tensor import Tensor
from repro.speech.phones import NUM_CLASSES
from repro.utils.rng import RngLike, new_rng, spawn_rngs


@dataclass(frozen=True)
class AcousticModelConfig:
    """Architecture settings; defaults are the fast laptop-scale model.

    ``cell_type`` selects the recurrent cell: ``"gru"`` (the paper's
    model) or ``"lstm"`` (the architecture the C-LSTM and ESE baselines
    were originally built on, provided so those comparisons can be run on
    their native cell).
    """

    input_dim: int = 40
    hidden_size: int = 64
    num_layers: int = 2
    num_classes: int = NUM_CLASSES
    cell_type: str = "gru"

    def __post_init__(self) -> None:
        if self.cell_type not in ("gru", "lstm"):
            raise ValueError(
                f"cell_type must be 'gru' or 'lstm', got {self.cell_type!r}"
            )

    def paper_scale(self) -> "AcousticModelConfig":
        """The full-size configuration (~9.6M GRU weights) of the paper."""
        return AcousticModelConfig(
            input_dim=self.input_dim,
            hidden_size=1024,
            num_layers=2,
            num_classes=self.num_classes,
            cell_type=self.cell_type,
        )


class GRUAcousticModel(Module):
    """Stacked recurrent network + linear softmax projection over phones.

    Named for the paper's GRU default; an LSTM backbone is selected via
    ``AcousticModelConfig(cell_type="lstm")`` and exposes the same API.
    """

    def __init__(
        self, config: AcousticModelConfig = AcousticModelConfig(), rng: RngLike = None
    ) -> None:
        super().__init__()
        rng_gru, rng_out = spawn_rngs(new_rng(rng), 2)
        self.config = config
        if config.cell_type == "gru":
            self.gru = GRU(
                config.input_dim, config.hidden_size, config.num_layers, rng=rng_gru
            )
        else:
            from repro.nn.rnn import LSTM

            self.gru = LSTM(
                config.input_dim, config.hidden_size, config.num_layers, rng=rng_gru
            )
        self.output = Linear(config.hidden_size, config.num_classes, rng=rng_out)

    def forward(self, features: Tensor) -> Tensor:
        """Features ``(T, B, D)`` → logits ``(T, B, C)``."""
        if self.config.cell_type == "gru":
            hidden, _ = self.gru(features)
        else:
            hidden = self.gru(features)
        t, b, h = hidden.shape
        flat = hidden.reshape(t * b, h)
        logits = self.output(flat)
        return logits.reshape(t, b, self.config.num_classes)

    # -- pruning surface ----------------------------------------------------
    def prunable_parameters(
        self, exclude_input_layer: bool = True
    ) -> Dict[str, Parameter]:
        """The 2-D GRU weight matrices BSP and the baselines compress.

        Biases and the (small) output projection stay dense, matching the
        paper's convention of pruning the recurrent weight matrices.

        ``exclude_input_layer`` additionally keeps the first layer's
        ``weight_ih`` dense (the default).  That matrix is a small fraction
        of the weights (~4% at this scale, ~7% at paper scale) but its
        columns are the *only* path for the input features: at the paper's
        1024-hidden scale a 10× column prune still leaves ~100 surviving
        columns per block, while at laptop scale it would choke a 40-dim
        feature vector down to 4 dims per strip and dominate the accuracy
        loss for reasons unrelated to the algorithm under study.
        """
        prunable = {}
        for name, param in self.named_parameters():
            if not (name.startswith("gru.") and param.data.ndim == 2):
                continue
            if exclude_input_layer and name == "gru.cell0.weight_ih":
                continue
            prunable[name] = param
        return prunable

    def prunable_weights(
        self, exclude_input_layer: bool = True
    ) -> Dict[str, np.ndarray]:
        """Copies of the prunable weight arrays (for projection/compile)."""
        return {
            name: p.data.copy()
            for name, p in self.prunable_parameters(exclude_input_layer).items()
        }

    def prunable_param_count(self, exclude_input_layer: bool = True) -> int:
        """Total weights in the prunable surface."""
        return sum(
            p.size for p in self.prunable_parameters(exclude_input_layer).values()
        )
