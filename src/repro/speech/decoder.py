"""Decoding: frame posteriors → phone sequences.

The default decoder is greedy framewise argmax followed by run-collapsing
and silence removal — adequate for a framewise-trained acoustic model.  A
``min_duration`` smoothing option suppresses one-frame blips, emulating
the duration constraint a full HMM/WFST decoder enforces.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ShapeError
from repro.speech.metrics import collapse_frames
from repro.speech.phones import SILENCE_ID


def greedy_frame_labels(logits: np.ndarray) -> np.ndarray:
    """Per-frame argmax labels from ``(T, C)`` logits."""
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (T, C), got {logits.shape}")
    return logits.argmax(axis=1)


def smooth_labels(labels: np.ndarray, min_duration: int = 1) -> np.ndarray:
    """Replace runs shorter than ``min_duration`` with the preceding label.

    A lightweight duration model: one- or two-frame spurious segments are
    usually classifier noise, not real phones.

    Fully vectorized: run boundaries come from ``np.diff``, and the
    cascade (a short run inherits from its — possibly itself smoothed —
    predecessor) collapses to "every run takes the label of the nearest
    surviving run at or before it", a ``np.maximum.accumulate`` over the
    surviving-run indices.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if min_duration <= 1 or len(labels) == 0:
        return labels.copy()
    boundaries = np.flatnonzero(np.diff(labels)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(labels)]))
    survives = (stops - starts) >= min_duration
    survives[0] = True  # the first run has no predecessor to inherit from
    source = np.maximum.accumulate(
        np.where(survives, np.arange(len(starts)), -1)
    )
    return np.repeat(labels[starts[source]], stops - starts)


def decode_utterance(
    logits: np.ndarray, min_duration: int = 1, drop: int = SILENCE_ID
) -> List[int]:
    """Logits ``(T, C)`` → collapsed phone sequence."""
    frames = greedy_frame_labels(logits)
    frames = smooth_labels(frames, min_duration)
    return collapse_frames(frames, drop=drop)


def decode_batch(
    logits: np.ndarray, lengths: np.ndarray, min_duration: int = 1
) -> List[List[int]]:
    """Decode a padded time-major batch ``(T, B, C)`` with true ``lengths``."""
    logits = np.asarray(logits)
    if logits.ndim != 3:
        raise ShapeError(f"batch logits must be (T, B, C), got {logits.shape}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (logits.shape[1],):
        raise ShapeError(
            f"lengths must be ({logits.shape[1]},), got {lengths.shape}"
        )
    # One batched argmax over (T, B, C) replaces a per-utterance
    # greedy_frame_labels call on a sliced (T, C) copy; the per-utterance
    # remainder feeds smooth_labels/collapse_frames directly, skipping
    # decode_utterance's re-validation dispatch.
    frames_all = logits.argmax(axis=2)
    sequences = []
    for b, length in enumerate(lengths):
        frames = frames_all[:length, b]
        if min_duration > 1:
            frames = smooth_labels(frames, min_duration)
        sequences.append(collapse_frames(frames))
    return sequences
