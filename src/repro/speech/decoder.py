"""Decoding: frame posteriors → phone sequences.

The default decoder is greedy framewise argmax followed by run-collapsing
and silence removal — adequate for a framewise-trained acoustic model.  A
``min_duration`` smoothing option suppresses one-frame blips, emulating
the duration constraint a full HMM/WFST decoder enforces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigError, ShapeError, StreamError
from repro.speech.metrics import collapse_frames
from repro.speech.phones import SILENCE_ID


def greedy_frame_labels(logits: np.ndarray) -> np.ndarray:
    """Per-frame argmax labels from ``(T, C)`` logits."""
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (T, C), got {logits.shape}")
    return logits.argmax(axis=1)


def smooth_labels(labels: np.ndarray, min_duration: int = 1) -> np.ndarray:
    """Replace runs shorter than ``min_duration`` with the preceding label.

    A lightweight duration model: one- or two-frame spurious segments are
    usually classifier noise, not real phones.

    Fully vectorized: run boundaries come from ``np.diff``, and the
    cascade (a short run inherits from its — possibly itself smoothed —
    predecessor) collapses to "every run takes the label of the nearest
    surviving run at or before it", a ``np.maximum.accumulate`` over the
    surviving-run indices.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if min_duration <= 1 or len(labels) == 0:
        return labels.copy()
    boundaries = np.flatnonzero(np.diff(labels)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(labels)]))
    survives = (stops - starts) >= min_duration
    survives[0] = True  # the first run has no predecessor to inherit from
    source = np.maximum.accumulate(
        np.where(survives, np.arange(len(starts)), -1)
    )
    return np.repeat(labels[starts[source]], stops - starts)


def decode_utterance(
    logits: np.ndarray, min_duration: int = 1, drop: int = SILENCE_ID
) -> List[int]:
    """Logits ``(T, C)`` → collapsed phone sequence."""
    frames = greedy_frame_labels(logits)
    frames = smooth_labels(frames, min_duration)
    return collapse_frames(frames, drop=drop)


class IncrementalDecoder:
    """Streaming :func:`decode_utterance`: frame labels in, phones out.

    Feeding the per-frame argmax labels of an utterance through
    :meth:`push` in arbitrary chunks and closing with :meth:`finish`
    yields exactly ``collapse_frames(smooth_labels(labels, min_duration))``
    — the offline decode — while committing each phone as early as its
    fate is sealed.

    The duration-smoothing of :func:`smooth_labels` decides a run's label
    by whether the run *survives* (length ≥ ``min_duration``, or it is
    the very first run); a short run inherits the label of the nearest
    surviving run before it.  Under streaming, the only undecided piece
    is the **trailing boundary run**: its length can still grow, so it is
    held back until it either reaches ``min_duration`` (its label is
    sealed — committed immediately) or ends (it inherits, which collapses
    into the previous smoothed run and emits nothing).  Everything before
    the boundary run is final, so per-phone latency is bounded by
    ``min_duration - 1`` frames past the run's start.
    """

    def __init__(self, min_duration: int = 1, drop: int = SILENCE_ID) -> None:
        if min_duration < 1:
            raise ConfigError(f"min_duration must be >= 1, got {min_duration}")
        self.min_duration = min_duration
        self.drop = drop
        self._run_label: Optional[int] = None  # trailing (boundary) run
        self._run_length = 0
        self._run_committed = False
        self._first_run = True  # smooth_labels: the first run always survives
        self._last_surviving: Optional[int] = None
        self._prev_smoothed: Optional[int] = None  # collapse-stage carry
        self._finished = False

    @property
    def pending(self) -> bool:
        """Whether an undecided boundary run is currently held back."""
        return self._run_label is not None and not self._run_committed

    def _emit(self, smoothed: int, out: List[int]) -> None:
        """The collapse stage: merge equal smoothed runs, drop silence."""
        if smoothed != self._prev_smoothed:
            if smoothed != self.drop:
                out.append(smoothed)
            self._prev_smoothed = smoothed

    def _close_run(self, out: List[int]) -> None:
        """The boundary run just ended; resolve its smoothed label."""
        if not self._run_committed:
            survives = self._first_run or self._run_length >= self.min_duration
            if survives:
                self._last_surviving = self._run_label
                self._emit(self._run_label, out)
            else:
                # Inherit the nearest surviving label — which is also the
                # previous run's smoothed label, so this never emits.
                self._emit(self._last_surviving, out)
        self._first_run = False

    def push(self, labels: np.ndarray) -> List[int]:
        """Feed frame labels; returns the phones committed by this chunk."""
        if self._finished:
            raise StreamError("decoder already finished; open a new one")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
        out: List[int] = []
        for label in labels.tolist():
            if label == self._run_label:
                self._run_length += 1
            else:
                if self._run_label is not None:
                    self._close_run(out)
                self._run_label = label
                self._run_length = 1
                self._run_committed = False
            if not self._run_committed and (
                self._first_run or self._run_length >= self.min_duration
            ):
                # Fate sealed: the run survives no matter how it ends.
                self._last_surviving = self._run_label
                self._emit(self._run_label, out)
                self._run_committed = True
        return out

    def finish(self) -> List[int]:
        """Close the stream: resolve the boundary run; the decoder closes."""
        if self._finished:
            raise StreamError("decoder already finished; open a new one")
        self._finished = True
        out: List[int] = []
        if self._run_label is not None:
            self._close_run(out)
        return out


def decode_batch(
    logits: np.ndarray, lengths: np.ndarray, min_duration: int = 1
) -> List[List[int]]:
    """Decode a padded time-major batch ``(T, B, C)`` with true ``lengths``."""
    logits = np.asarray(logits)
    if logits.ndim != 3:
        raise ShapeError(f"batch logits must be (T, B, C), got {logits.shape}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (logits.shape[1],):
        raise ShapeError(
            f"lengths must be ({logits.shape[1]},), got {lengths.shape}"
        )
    # One batched argmax over (T, B, C) replaces a per-utterance
    # greedy_frame_labels call on a sliced (T, C) copy; the per-utterance
    # remainder feeds smooth_labels/collapse_frames directly, skipping
    # decode_utterance's re-validation dispatch.
    frames_all = logits.argmax(axis=2)
    sequences = []
    for b, length in enumerate(lengths):
        frames = frames_all[:length, b]
        if min_duration > 1:
            frames = smooth_labels(frames, min_duration)
        sequences.append(collapse_frames(frames))
    return sequences
