"""Stateful streaming inference: sessions, deadline batching, latency.

The paper's accelerator exists for *real-time* speech, but the offline
serving path (:mod:`repro.engine.serving`) only decodes complete
utterances.  This module adds the low-latency online path on top of the
same compiled :class:`~repro.engine.plan.ModelPlan`:

* :class:`StreamingSession` — one client stream.  Feed feature chunks
  (or raw audio through a :class:`~repro.speech.features.StreamingFrontend`)
  and receive incrementally committed phones.  The recurrent carry is
  threaded through :meth:`ModelPlan.run_chunk`, so an utterance fed in
  *any* chunk split decodes to exactly the phone sequence the offline
  ``decode_utterance`` path produces (see ``docs/serving.md`` for the
  precise exactness guarantee per scheme).
* :class:`StreamScheduler` — many concurrent sessions multiplexed onto
  one plan.  Queued chunks are grouped **by chunk length** (equal-length
  chunks stack into one padded-free ``(T, B, D)`` batch; padding a
  state-carrying chunk would corrupt the shorter sessions' state, so
  unequal lengths never share a batch) and a group runs as soon as it
  fills ``max_batch_size`` — or as soon as its oldest chunk has waited
  ``max_wait_frames`` frames of other traffic, the deadline that bounds
  tail latency under light load.
* :class:`StreamStats` — what the scheduler did: batch sizes, per-chunk
  wall-clock latency percentiles (p50/p95), and frames of deadline wait,
  alongside the batch-economics counters ``ServingStats`` tracks for the
  offline path.

Plans compiled through the unified pipeline carry their layer graph and
any tuned kernel-backend choice with them, so a session driven by an
artifact reloaded via :func:`repro.engine.load_plan` streams chunk-exact
logits identical to the plan that was saved (``tests/test_artifact.py``
pins this, including the int8 bitwise guarantee).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

#: Sliding window for the latency distribution: long-lived schedulers
#: must not grow state per chunk, so percentiles cover the most recent
#: chunks only (128 KiB of floats at the cap).
LATENCY_WINDOW = 16384

import numpy as np

from repro.errors import ConfigError, ShapeError, StreamError, SwapError
from repro.engine.plan import ModelPlan, PlanState
from repro.speech.decoder import IncrementalDecoder
from repro.speech.features import StreamingFrontend
from repro.utils.stats import percentile as stats_percentile


@dataclass(frozen=True)
class StreamConfig:
    """Scheduler knobs.

    ``max_batch_size`` bounds how many sessions' chunks fuse into one
    ``run_chunk`` call; ``max_wait_frames`` is the batching deadline — a
    queued chunk never waits for more than this many frames of *other*
    sessions' traffic before its group runs, so latency stays bounded
    even when traffic is too light to fill batches.  ``min_duration`` is
    forwarded to each session's incremental decoder.
    """

    max_batch_size: int = 8
    max_wait_frames: int = 25
    min_duration: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_frames < 0:
            raise ConfigError(
                f"max_wait_frames must be >= 0, got {self.max_wait_frames}"
            )
        if self.min_duration < 1:
            raise ConfigError(f"min_duration must be >= 1, got {self.min_duration}")


@dataclass
class StreamStats:
    """What the stream scheduler did, including the latency distribution."""

    sessions_opened: int = 0
    sessions_finished: int = 0
    chunks: int = 0
    batches: int = 0
    batched_chunks: int = 0
    frames: int = 0
    wait_frames: int = 0  # total frames of other traffic chunks waited
    plan_swaps: int = 0  # hot-swaps carried out by swap_plan()
    #: Sliding window (most recent :data:`LATENCY_WINDOW` chunks) of
    #: wall-clock submit→decode latencies, so a long-lived scheduler's
    #: stats stay bounded.
    chunk_latency_s: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )

    @property
    def mean_batch_size(self) -> float:
        return self.batched_chunks / self.batches if self.batches else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Submit→decode latency percentile over the sliding window."""
        return stats_percentile(list(self.chunk_latency_s), percentile)

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)


class StreamingSession:
    """One stateful decode stream over a compiled plan (unbatched).

    Usage::

        session = StreamingSession(plan, min_duration=2)
        for chunk in feature_chunks:        # (t, D) pieces, any sizes
            new_phones = session.feed(chunk)
        tail = session.finish()
        hypothesis = session.phones         # == offline decode_utterance

    With a :class:`~repro.speech.features.StreamingFrontend` attached,
    :meth:`feed_audio` accepts raw waveform pieces instead and featurizes
    them bit-exactly with the offline ``log_mel_spectrogram``.

    For many concurrent sessions, use :class:`StreamScheduler`, which
    fuses chunks across sessions into batched ``run_chunk`` calls.
    """

    def __init__(
        self,
        plan: ModelPlan,
        min_duration: int = 1,
        frontend: Optional[StreamingFrontend] = None,
    ) -> None:
        self.plan = plan
        self.frontend = frontend
        self._state: Optional[PlanState] = None
        self._decoder = IncrementalDecoder(min_duration)
        self._phones: List[int] = []
        self._frames = 0
        self._finished = False

    @property
    def phones(self) -> List[int]:
        """All phones committed so far (a copy)."""
        return list(self._phones)

    @property
    def frames_fed(self) -> int:
        return self._frames

    @property
    def finished(self) -> bool:
        return self._finished

    def _check_open(self) -> None:
        if self._finished:
            raise StreamError("session already finished; open a new one")

    def feed(self, features: np.ndarray) -> List[int]:
        """Feed a ``(t, D)`` feature chunk; returns newly committed phones."""
        self._check_open()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.plan.input_dim:
            raise ShapeError(
                f"expected (t, {self.plan.input_dim}) features, "
                f"got {features.shape}"
            )
        if len(features) == 0:
            return []
        logits, self._state = self.plan.run_chunk(
            features[:, None, :], self._state
        )
        self._frames += len(features)
        committed = self._decoder.push(logits[:, 0, :].argmax(axis=1))
        self._phones.extend(committed)
        return committed

    def feed_audio(self, samples: np.ndarray) -> List[int]:
        """Feed raw waveform samples through the attached frontend."""
        if self.frontend is None:
            raise StreamError(
                "session has no StreamingFrontend; construct it with "
                "frontend=StreamingFrontend(config) to feed raw audio"
            )
        self._check_open()
        return self.feed(self.frontend.push(samples))

    def finish(self) -> List[int]:
        """Close the stream; returns the phones committed by the tail."""
        self._check_open()
        committed: List[int] = []
        if self.frontend is not None:
            committed += self.feed(self.frontend.finish())
        self._finished = True
        tail = self._decoder.finish()
        self._phones.extend(tail)
        return committed + tail


@dataclass
class _Pending:
    """One queued chunk: features plus its submit timestamps."""

    features: np.ndarray
    submit_perf: float
    submit_clock: int  # frame clock just after this chunk's own frames


class _Entry:
    """Scheduler-side per-session record."""

    def __init__(self, min_duration: int) -> None:
        self.state: Optional[PlanState] = None
        self.decoder = IncrementalDecoder(min_duration)
        self.queue: Deque[_Pending] = deque()
        self.committed: List[int] = []  # drained by poll()
        self.frames = 0


class StreamScheduler:
    """Latency-aware batching of many streaming sessions on one plan.

    Usage::

        scheduler = StreamScheduler(plan, StreamConfig(max_batch_size=8))
        sids = [scheduler.open() for _ in range(8)]
        for sid, chunk in traffic:
            scheduler.feed(sid, chunk)
            new_phones = scheduler.poll(sid)
        hyps = {sid: scheduler.finish(sid) for sid in sids}

    Only the *head* chunk of each session is eligible for batching (a
    session's chunks are state-dependent, so two of its chunks can never
    share a batch); eligible chunks group by exact length and a group
    runs when it reaches ``max_batch_size`` or when its oldest member has
    waited ``max_wait_frames`` frames of subsequently arriving traffic.
    ``flush()``/``finish()`` run everything still queued.

    Every session's chunk occupies its own batch rows, so co-batched
    traffic can only reach a session through BLAS reduction order in the
    shared per-step recurrent GEMM — a float-epsilon effect (~1e-16)
    that never moves an argmax in practice: a scheduled session's phone
    hypothesis equals the offline ``decode_utterance`` result exactly,
    like an unbatched :class:`StreamingSession` (whose chunk splits are
    bitwise-exact for int8 plans; see ``docs/serving.md``).
    """

    def __init__(
        self,
        plan: ModelPlan,
        config: StreamConfig = StreamConfig(),
        journal=None,
    ) -> None:
        self.plan = plan
        self.config = config
        self.stats = StreamStats()
        self._entries: Dict[int, _Entry] = {}
        self._next_id = 0
        self._clock = 0  # total frames fed, all sessions
        #: Optional chunk journal (any object with ``open(sid)``,
        #: ``record(sid, features)``, ``mark_finished(sid)`` — e.g.
        #: :class:`repro.engine.fabric.SessionJournal`).  Every accepted
        #: chunk is recorded *after* validation, so replaying a journal
        #: into a fresh scheduler reproduces the stream exactly (the
        #: chunk-exactness guarantee makes the replay decode
        #: byte-identical).  The serving fabric builds crash recovery on
        #: this hook.
        self.journal = journal

    def open(self) -> int:
        """Open a new session; returns its id."""
        sid = self._next_id
        self._next_id += 1
        self._entries[sid] = _Entry(self.config.min_duration)
        self.stats.sessions_opened += 1
        if self.journal is not None:
            self.journal.open(sid)
        return sid

    def adopt(
        self,
        state: Optional[PlanState],
        decoder: Optional[IncrementalDecoder] = None,
        committed: Optional[List[int]] = None,
        frames: int = 0,
    ) -> int:
        """Install a mid-stream session that was decoded elsewhere.

        The crash-recovery path: a journal replay reconstructs a
        session's carry ``state``, incremental ``decoder``, and frame
        count outside the scheduler, then adopts them here so the
        session continues live from exactly where the replay left it.
        The state is adapted to this scheduler's plan (dtype cast for a
        scheme change; :class:`~repro.errors.ShapeError` on architecture
        mismatch).  ``committed`` seeds the un-polled phone buffer —
        re-homing callers that already delivered the replayed phones
        pass none.  Adopted sessions start a fresh journal entry; the
        caller owns the history that produced the state.
        """
        sid = self._next_id
        self._next_id += 1
        entry = _Entry(self.config.min_duration)
        if decoder is not None:
            entry.decoder = decoder
        if state is not None:
            entry.state = self.plan.adapt_state(state)
        entry.committed = list(committed) if committed else []
        entry.frames = frames
        self._entries[sid] = entry
        self.stats.sessions_opened += 1
        if self.journal is not None:
            self.journal.open(sid)
        return sid

    def swap_plan(self, plan: ModelPlan) -> ModelPlan:
        """Hot-swap every live session onto ``plan``; returns the old plan.

        The swap is a barrier: all queued chunks are flushed through the
        incumbent plan first, so no in-flight batch ever mixes plans.
        Then every live session's carry state is adapted to the new
        plan's compute dtypes (:meth:`ModelPlan.adapt_state
        <repro.engine.plan.ModelPlan.adapt_state>`) — ``PlanState``
        shapes are stable across same-architecture plans, so sessions
        continue mid-utterance without dropping a frame.

        Raises :class:`~repro.errors.SwapError` (before flushing or
        touching any session) when ``plan``'s architecture signature
        differs from the incumbent's; a rejected swap leaves the
        scheduler fully intact.
        """
        if plan.signature() != self.plan.signature():
            raise SwapError(
                "cannot hot-swap: architecture mismatch "
                f"(incumbent {self.plan.signature()}, "
                f"candidate {plan.signature()})"
            )
        self.flush()
        old = self.plan
        if plan is not old:
            for entry in self._entries.values():
                if entry.state is not None:
                    entry.state = plan.adapt_state(entry.state)
            self.plan = plan
        self.stats.plan_swaps += 1
        return old

    def _entry(self, sid: int) -> _Entry:
        entry = self._entries.get(sid)
        if entry is None:
            if 0 <= sid < self._next_id:
                raise StreamError(f"session {sid} already finished")
            raise StreamError(f"unknown session id {sid}")
        return entry

    def feed(self, sid: int, features: np.ndarray) -> None:
        """Queue a ``(t, D)`` chunk for ``sid``; may run ready batches."""
        entry = self._entry(sid)
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.plan.input_dim:
            raise ShapeError(
                f"expected (t, {self.plan.input_dim}) features, "
                f"got {features.shape}"
            )
        if len(features) == 0:
            return
        if self.journal is not None:
            self.journal.record(sid, features)
        # The clock stamp excludes the chunk's own frames, so the
        # deadline measures frames of *other* traffic arriving while the
        # chunk waits.
        self._clock += len(features)
        entry.queue.append(
            _Pending(features, time.perf_counter(), self._clock)
        )
        self.stats.chunks += 1
        self.stats.frames += len(features)
        self._pump()

    def poll(self, sid: int) -> List[int]:
        """Drain the phones committed for ``sid`` since the last poll."""
        entry = self._entry(sid)
        committed, entry.committed = entry.committed, []
        return committed

    def pending(self) -> int:
        """Chunks queued but not yet run."""
        return sum(len(entry.queue) for entry in self._entries.values())

    def flush(self) -> None:
        """Run every queued chunk (deadline disregarded)."""
        while self.pending():
            self._run_ready(force=True)

    def finish(self, sid: int) -> List[int]:
        """Close ``sid``: run its queue, finish its decoder, return the
        phones not yet polled (earlier ``poll`` results are not repeated).
        """
        entry = self._entry(sid)
        while entry.queue:
            self._run_ready(force=True, only_sid=sid)
        entry.committed.extend(entry.decoder.finish())
        del self._entries[sid]
        self.stats.sessions_finished += 1
        if self.journal is not None:
            self.journal.mark_finished(sid)
        return entry.committed

    # -- batching core ----------------------------------------------------
    def _groups(self, only_sid: Optional[int] = None) -> Dict[int, List[int]]:
        """Eligible head chunks grouped by exact chunk length."""
        groups: Dict[int, List[int]] = {}
        for sid, entry in self._entries.items():
            if only_sid is not None and sid != only_sid:
                continue
            if entry.queue:
                groups.setdefault(len(entry.queue[0].features), []).append(sid)
        return groups

    def _pump(self) -> None:
        """Run groups that are full or past their deadline."""
        while self._run_ready(force=False):
            pass

    def _run_ready(self, force: bool, only_sid: Optional[int] = None) -> bool:
        for length, sids in sorted(self._groups(only_sid).items()):
            full = len(sids) >= self.config.max_batch_size
            expired = any(
                self._clock - self._entries[sid].queue[0].submit_clock
                >= self.config.max_wait_frames
                for sid in sids
            )
            if force or full or expired:
                self._run_group(sids)
                return True
        return False

    def _run_group(self, sids: List[int]) -> None:
        # Oldest submissions first when the group overfills the batch.
        sids = sorted(
            sids, key=lambda sid: self._entries[sid].queue[0].submit_clock
        )[: self.config.max_batch_size]
        entries = [self._entries[sid] for sid in sids]
        pendings = [entry.queue.popleft() for entry in entries]
        batch = np.stack([p.features for p in pendings], axis=1)
        states = PlanState.stack(
            [
                entry.state if entry.state is not None else self.plan.init_state(1)
                for entry in entries
            ]
        )
        logits, new_state = self.plan.run_chunk(batch, states)
        labels = logits.argmax(axis=2)  # (T, B)
        for b, (entry, pending) in enumerate(zip(entries, pendings)):
            entry.committed.extend(entry.decoder.push(labels[:, b]))
            entry.frames += len(pending.features)
            # Stamped after this session's decode: the percentiles cover
            # the full submit→decoded-phones path a client waits for.
            self.stats.chunk_latency_s.append(
                time.perf_counter() - pending.submit_perf
            )
            self.stats.wait_frames += self._clock - pending.submit_clock
        for entry, split in zip(entries, new_state.split()):
            entry.state = split
        self.stats.batches += 1
        self.stats.batched_chunks += len(entries)
