"""Length-bucketed dynamic micro-batching over an utterance stream.

Serving speech means many short, ragged utterances arriving one by one;
running each alone wastes the batched throughput a compiled
:class:`~repro.engine.plan.ModelPlan` offers, while batching arbitrary
lengths together wastes compute on padding.  The :class:`MicroBatcher`
splits the difference: utterances are grouped into *length buckets*
(``bucket_width`` frames wide), each bucket fills up to
``max_batch_size`` entries, and a full bucket is assembled into one
padded time-major ``(T, B, D)`` batch, run through the plan, and decoded
with :func:`repro.speech.decoder.decode_batch` in a single shot.
``flush`` drains the partially filled buckets at end of stream.

:class:`ServingStats` records what the bucketing actually bought:
batches issued, mean batch size, and the padding overhead (padded frames
computed beyond the real ones — the quantity bucketing minimizes).

The plan under the batcher can come from anywhere the unified compiler
produces one: a fresh :func:`~repro.engine.plan.compile_model`, a
measured-autotuned graph (:func:`repro.compiler.autotune.tune_plan`), or
a deployment artifact reloaded with :func:`repro.engine.load_plan` —
serving code never needs to know which (see ``docs/compiler.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.engine.plan import ModelPlan
from repro.speech.decoder import decode_batch


@dataclass(frozen=True)
class ServingConfig:
    """Micro-batching knobs.

    ``bucket_width`` trades padding for batching opportunity: utterances
    whose lengths fall in the same ``bucket_width``-frame band share a
    batch, so the worst-case padding per utterance is one band minus one
    frame.  ``min_duration`` is forwarded to the decoder's duration
    smoothing.
    """

    max_batch_size: int = 16
    bucket_width: int = 25
    min_duration: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.bucket_width < 1:
            raise ConfigError(f"bucket_width must be >= 1, got {self.bucket_width}")
        if self.min_duration < 1:
            raise ConfigError(f"min_duration must be >= 1, got {self.min_duration}")


@dataclass
class ServingStats:
    """What the batcher did: batch counts and padding economics."""

    utterances: int = 0
    batches: int = 0
    batched_utterances: int = 0
    real_frames: int = 0
    batch_frames: int = 0  # frames computed, including padding

    @property
    def mean_batch_size(self) -> float:
        return self.batched_utterances / self.batches if self.batches else 0.0

    @property
    def padding_overhead(self) -> float:
        """Fraction of computed frames that were padding."""
        if self.batch_frames == 0:
            return 0.0
        return (self.batch_frames - self.real_frames) / self.batch_frames


class MicroBatcher:
    """Assembles padded batches from submitted utterances by length bucket.

    Usage::

        batcher = MicroBatcher(plan)
        ids = [batcher.submit(features) for features in stream]
        batcher.flush()
        hypotheses = [batcher.result(i) for i in ids]

    ``submit`` runs a bucket as soon as it is full, so memory stays
    bounded by ``max_batch_size`` utterances per bucket; results arrive
    out of submission order and are retrieved by the id ``submit``
    returned.  Malformed utterances — empty (0 frames), wrong rank, or
    wrong feature dimension — are rejected with :class:`ShapeError` at
    submit time, before they can poison a whole batch inside
    ``_run_bucket``.
    """

    def __init__(self, plan: ModelPlan, config: ServingConfig = ServingConfig()) -> None:
        self.plan = plan
        self.config = config
        self.stats = ServingStats()
        self._pending: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        self._results: Dict[int, List[int]] = {}
        self._next_id = 0

    def submit(self, features: np.ndarray) -> int:
        """Queue one utterance ``(T, D)``; returns its result id.

        Raises :class:`ShapeError` for 0-frame, wrong-rank, or
        wrong-feature-dim utterances — validation happens here, at the
        submission boundary, not later inside the batched run.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.plan.input_dim:
            raise ShapeError(
                f"expected (T, {self.plan.input_dim}) features, "
                f"got {features.shape}"
            )
        if len(features) == 0:
            raise ShapeError(
                "cannot submit an empty (0-frame) utterance; an empty "
                "hypothesis needs no model — skip the submission instead"
            )
        uid = self._next_id
        self._next_id += 1
        self.stats.utterances += 1
        bucket = (len(features) - 1) // self.config.bucket_width
        queue = self._pending.setdefault(bucket, [])
        queue.append((uid, features))
        if len(queue) >= self.config.max_batch_size:
            self._run_bucket(bucket)
        return uid

    def flush(self) -> None:
        """Run every partially filled bucket (end of stream)."""
        for bucket in sorted(self._pending):
            self._run_bucket(bucket)

    def result(self, uid: int) -> List[int]:
        """Take the decoded phone sequence for ``uid``.

        Raises ``KeyError`` until the utterance's bucket has run — and
        again on a second call: results are handed out exactly once so a
        long-running stream does not accumulate every past hypothesis.
        """
        return self._results.pop(uid)

    def pending(self) -> int:
        """Number of submitted utterances not yet run."""
        return sum(len(queue) for queue in self._pending.values())

    def _run_bucket(self, bucket: int) -> None:
        entries = self._pending.pop(bucket)
        lengths = np.array([len(features) for _, features in entries], dtype=np.int64)
        t_max = int(lengths.max())
        batch = np.zeros((t_max, len(entries), self.plan.input_dim))
        for b, (_, features) in enumerate(entries):
            batch[: len(features), b, :] = features
        logits = self.plan.forward_batch(batch, lengths)
        hypotheses = decode_batch(logits, lengths, self.config.min_duration)
        for (uid, _), hypothesis in zip(entries, hypotheses):
            self._results[uid] = hypothesis
        self.stats.batches += 1
        self.stats.batched_utterances += len(entries)
        self.stats.real_frames += int(lengths.sum())
        self.stats.batch_frames += t_max * len(entries)


def serve_stream(
    plan: ModelPlan,
    utterances: Iterable[np.ndarray],
    config: ServingConfig = ServingConfig(),
) -> Tuple[List[List[int]], ServingStats]:
    """Decode a whole utterance stream; results in submission order.

    Every utterance must be well-formed (``(T, D)`` with ``T >= 1`` and
    the plan's feature dim) — :meth:`MicroBatcher.submit` raises
    :class:`ShapeError` otherwise.
    """
    batcher = MicroBatcher(plan, config)
    ids = [batcher.submit(utterance) for utterance in utterances]
    batcher.flush()
    return [batcher.result(uid) for uid in ids], batcher.stats
