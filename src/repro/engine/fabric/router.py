"""Consistent-hash session routing.

Sessions pin to workers (recurrent state lives on one worker), so the
assignment function matters only when the worker set changes: when a
worker dies permanently, only *its* sessions should move, and they
should spread across the survivors instead of dogpiling one neighbor.
That is exactly what a consistent-hash ring with virtual nodes gives:

* each worker owns ``replicas`` points on a 64-bit ring (BLAKE2b of
  ``"worker:replica"`` — deterministic across processes and runs, unlike
  Python's seeded ``hash``);
* a session id hashes to a point and walks clockwise to the first
  *live* worker;
* removing a worker only reassigns keys that landed on its points, in
  ``1/n``-sized slices spread over the other workers.

The ring is static (all workers ever configured); liveness is a filter
at lookup time, so a worker that comes back after a restart reclaims
exactly the slice it owned before — re-homed sessions return to their
original worker, keeping placement stable across a crash/restart cycle.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ConfigError, FabricError


def _point(label: str) -> int:
    """Deterministic 64-bit ring position for a label."""
    return int.from_bytes(
        hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing of session ids onto worker indices."""

    def __init__(self, workers: Sequence[int], replicas: int = 64) -> None:
        if not workers:
            raise ConfigError("HashRing needs at least one worker")
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        points: List[Tuple[int, int]] = []
        for worker in workers:
            for replica in range(replicas):
                points.append((_point(f"{worker}:{replica}"), worker))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._workers = [worker for _, worker in points]

    def assign(self, key: int, alive: Iterable[int]) -> int:
        """The first live worker clockwise of ``key``'s ring position."""
        live = set(alive)
        if not live:
            raise FabricError("no live workers to assign sessions to")
        start = bisect.bisect(self._hashes, _point(f"session:{key}"))
        size = len(self._workers)
        for step in range(size):
            worker = self._workers[(start + step) % size]
            if worker in live:
                return worker
        raise FabricError("no live workers to assign sessions to")


__all__ = ["HashRing"]
