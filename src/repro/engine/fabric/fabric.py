"""The serving fabric facade: supervised multi-process streaming.

:class:`ServingFabric` is the client-facing object.  It presents the
same session API as a single-process
:class:`~repro.engine.streaming.StreamScheduler` — ``open`` / ``feed`` /
``poll`` / ``finish`` — but shards sessions across supervised worker
processes and adds the three production behaviors a single process
cannot offer:

* **Fault tolerance.**  Every worker failure (crash or stall) is
  detected at a synchronous touchpoint (RPC timeout, dead process,
  broken pipe), the worker is restarted with exponential backoff, and
  its orphaned sessions are *re-homed*: their journaled feature chunks
  are replayed into the replacement worker.  Chunk-exactness makes the
  replayed decode byte-identical to an uninterrupted run, so the phones
  already delivered to a client form an exact prefix of the recovered
  stream — recovery is invisible apart from latency.
* **Admission control and backpressure.**  Per-worker in-flight queues
  are bounded in frames *and* chunks; past the bound the fabric sheds —
  new sessions at ``open`` and chunks at ``feed`` — with a typed
  :class:`~repro.errors.OverloadError` instead of queueing.  The frame
  bound defaults to ``max_wait_frames * max_batch_size``, i.e. a worker
  is never handed more queued work than its scheduler can retire within
  the latency deadline, so ``max_wait_frames`` survives saturation.
* **Fleet observability.**  :meth:`stats` rolls per-worker
  :class:`~repro.engine.streaming.StreamStats` snapshots into a
  :class:`FleetStats` with per-worker and aggregate p50/p95 latency,
  restart/shed/re-home counters.

Supervision is synchronous by design — there is no monitor thread.
Detection happens on the calls that already talk to a worker, plus the
explicit :meth:`check` heartbeat sweep a serving loop should call
periodically.  This keeps every fault-injection scenario deterministic
and replayable, which is how ``tests/test_fabric.py`` can assert
byte-identical recovery instead of "it usually works".
"""

from __future__ import annotations

import multiprocessing
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine.fabric.canary import CanaryConfig, CanaryReport, CanaryState
from repro.engine.fabric.faults import FaultConfig
from repro.engine.fabric.journal import SessionJournal
from repro.engine.fabric.router import HashRing
from repro.engine.fabric.supervisor import Supervisor
from repro.engine.fabric.worker import WorkerFailure
from repro.engine.streaming import StreamConfig
from repro.utils.stats import percentile
from repro.errors import (
    ConfigError,
    FabricError,
    OverloadError,
    ShapeError,
    StreamError,
    SwapError,
)
from repro.speech.decoder import IncrementalDecoder

#: What counts as a registry version id (vs a filesystem artifact path)
#: in the version arguments of :meth:`ServingFabric.swap` /
#: :meth:`ServingFabric.start_canary` on a registry-backed fabric.
_VERSION_ID = re.compile(r"^(latest|v?[0-9]+)$")


@dataclass(frozen=True)
class FabricConfig:
    """Fabric-level knobs (the per-worker scheduler keeps its own
    :class:`~repro.engine.streaming.StreamConfig` under ``stream``).

    ``max_backlog_frames`` bounds each worker's in-flight queue (frames
    sent but not yet acknowledged); ``None`` derives the deadline-aware
    default ``stream.max_wait_frames * stream.max_batch_size`` — the
    most queued work the worker's scheduler can retire within one
    ``max_wait_frames`` window at full batches.  ``rpc_timeout_s`` and
    ``heartbeat_timeout_s`` are the stall detectors; restarts back off
    exponentially from ``backoff_base_s`` up to ``backoff_cap_s`` and a
    worker is abandoned (sessions permanently re-homed) after
    ``max_restarts``.
    """

    num_workers: int = 2
    stream: StreamConfig = StreamConfig()
    max_sessions_per_worker: int = 64
    max_backlog_frames: Optional[int] = None
    max_pending_chunks: int = 64
    rpc_timeout_s: float = 10.0
    heartbeat_timeout_s: float = 5.0
    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    ring_replicas: int = 64
    start_method: Optional[str] = None
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_sessions_per_worker < 1:
            raise ConfigError("max_sessions_per_worker must be >= 1")
        if self.max_backlog_frames is not None and self.max_backlog_frames < 1:
            raise ConfigError("max_backlog_frames must be >= 1 (or None)")
        if self.max_pending_chunks < 1:
            raise ConfigError("max_pending_chunks must be >= 1")
        if self.rpc_timeout_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ConfigError("timeouts must be > 0")
        if self.max_restarts < 0:
            raise ConfigError(f"max_restarts must be >= 0, got {self.max_restarts}")

    @property
    def backlog_frames_bound(self) -> int:
        if self.max_backlog_frames is not None:
            return self.max_backlog_frames
        return max(self.stream.max_wait_frames * self.stream.max_batch_size, 1)


# One copy of the empty-safe percentile lives in repro.utils.stats; the
# fleet rollups and the canary report share it.
_percentile = percentile


@dataclass
class WorkerStats:
    """One worker's slice of the fleet rollup."""

    index: int
    alive: bool
    incarnation: int
    restarts: int
    snapshot: Optional[Dict] = None  # scheduler stats; None if unreachable

    def _latencies(self) -> List[float]:
        if not self.snapshot:
            return []
        return list(self.snapshot.get("latencies_s") or [])

    @property
    def p50_latency_s(self) -> float:
        return _percentile(self._latencies(), 50.0)

    @property
    def p95_latency_s(self) -> float:
        return _percentile(self._latencies(), 95.0)


@dataclass
class FleetStats:
    """Fleet-wide rollup: per-worker rows plus fabric counters."""

    workers: List[WorkerStats] = field(default_factory=list)
    sessions_opened: int = 0
    sessions_finished: int = 0
    sessions_rehomed: int = 0
    sessions_shed: int = 0
    chunks_shed: int = 0
    restarts: int = 0
    crashes_detected: int = 0
    stalls_detected: int = 0
    plan_swaps: int = 0
    max_backlog_frames_seen: int = 0
    backlog_frames_bound: int = 0

    def _all_latencies(self) -> List[float]:
        merged: List[float] = []
        for worker in self.workers:
            merged.extend(worker._latencies())
        return merged

    @property
    def p50_latency_s(self) -> float:
        return _percentile(self._all_latencies(), 50.0)

    @property
    def p95_latency_s(self) -> float:
        return _percentile(self._all_latencies(), 95.0)

    @property
    def chunks(self) -> int:
        return sum(w.snapshot.get("chunks", 0) for w in self.workers if w.snapshot)

    @property
    def batches(self) -> int:
        return sum(w.snapshot.get("batches", 0) for w in self.workers if w.snapshot)

    @property
    def mean_batch_size(self) -> float:
        batched = sum(
            w.snapshot.get("batched_chunks", 0)
            for w in self.workers
            if w.snapshot
        )
        return batched / self.batches if self.batches else 0.0

    def version_latencies(self, version: str) -> List[float]:
        """Chunk latencies of the schedulers serving one plan version —
        what canary shadow-scoring compares p95 on."""
        merged: List[float] = []
        for worker in self.workers:
            if not worker.snapshot:
                continue
            for row in worker.snapshot.get("schedulers", ()):
                if row.get("version") == version:
                    merged.extend(row.get("latencies_s") or [])
        return merged


class _Session:
    __slots__ = ("worker", "version", "committed", "delivered", "finished")

    def __init__(self, worker: int, version: str) -> None:
        self.worker = worker
        self.version = version  # artifact path the session decodes under
        self.committed: List[int] = []
        self.delivered = 0
        self.finished = False


class ServingFabric:
    """Supervised multi-process streaming over one compiled artifact.

    Usage::

        fabric = ServingFabric("model.plan.npz", FabricConfig(num_workers=4))
        with fabric:
            sid = fabric.open()
            fabric.feed(sid, chunk)            # may raise OverloadError
            phones = fabric.poll(sid)
            phones += fabric.finish(sid)
            fleet = fabric.stats()

    Every worker process ``load_plan``\\ s ``artifact_path`` itself — the
    artifact (crash-safe on disk, checksummed on load) is the unit of
    deployment, and a restarted worker reloads it bit-identically.
    """

    def __init__(
        self,
        artifact_path: Union[str, Path],
        config: FabricConfig = FabricConfig(),
    ) -> None:
        self.config = config
        self._artifact_path = str(artifact_path)
        # Parent-side copy: shape validation + offline comparison hooks.
        from repro.engine.artifact import load_plan

        self._plan = load_plan(artifact_path)
        method = config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        ctx = multiprocessing.get_context(method)
        self._supervisor = Supervisor(
            ctx,
            config.num_workers,
            self._artifact_path,
            config.stream,
            config.faults,
            config.max_restarts,
            config.backoff_base_s,
            config.backoff_cap_s,
        )
        self._ring = HashRing(range(config.num_workers), config.ring_replicas)
        self._journal = SessionJournal()
        self._sessions: Dict[int, _Session] = {}
        self._next_sid = 0
        self._closed = False
        self.sessions_opened = 0
        self.sessions_finished = 0
        self.sessions_rehomed = 0
        self.sessions_shed = 0
        self.chunks_shed = 0
        self.plan_swaps = 0
        self.max_backlog_frames_seen = 0
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        #: The serving version: the artifact path new (non-canary)
        #: sessions open under; updated atomically by :meth:`swap`.
        self._version = self._artifact_path
        self._canary: Optional[CanaryState] = None
        self._canary_report: Optional[CanaryReport] = None
        # Registry backing (set by from_registry): lets swap/start_canary
        # take version ids and records deployment decisions back.
        self._registry = None
        self._registry_name: Optional[str] = None
        self._incumbent_id: Optional[str] = None

    @classmethod
    def from_plan(
        cls, plan, config: FabricConfig = FabricConfig()
    ) -> "ServingFabric":
        """Convenience: save ``plan`` to a temp artifact and serve it."""
        from repro.engine.artifact import save_plan

        tempdir = tempfile.TemporaryDirectory(prefix="repro-fabric-")
        path = Path(tempdir.name) / "model.plan.npz"
        save_plan(path, plan)
        fabric = cls(path, config)
        fabric._tempdir = tempdir  # keep the artifact alive with the fabric
        return fabric

    @classmethod
    def from_registry(
        cls,
        registry,
        name: str,
        version: str = "latest",
        config: FabricConfig = FabricConfig(),
    ) -> "ServingFabric":
        """Serve a :class:`~repro.engine.registry.PlanRegistry` version.

        The artifact is integrity-verified before the fleet spawns, and
        the fabric remembers the registry: :meth:`swap` and
        :meth:`start_canary` then accept version ids (``"v3"``,
        ``"latest"``) and record their promote/rollback/swap decisions
        into the version's registry metadata.
        """
        entry = registry.resolve(name, version)
        registry.verify(entry)
        fabric = cls(entry.artifact_path, config)
        fabric._registry = registry
        fabric._registry_name = name
        fabric._incumbent_id = entry.version
        return fabric

    # -- context management -------------------------------------------------
    def __enter__(self) -> "ServingFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._supervisor.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # -- session API --------------------------------------------------------
    def _session(self, sid: int) -> _Session:
        session = self._sessions.get(sid)
        if session is None:
            raise StreamError(f"unknown session id {sid}")
        if session.finished:
            raise StreamError(f"session {sid} already finished")
        return session

    def _handle(self, session: _Session):
        return self._supervisor.handles[session.worker]

    def _live_sessions_on(self, worker: int) -> int:
        return sum(
            1
            for session in self._sessions.values()
            if session.worker == worker and not session.finished
        )

    def open(self) -> int:
        """Open a new session; returns its fabric-wide id.

        Raises :class:`OverloadError` (the session is *not* created) if
        the consistent-hash target worker is at session capacity —
        shed-new-work-first is the degradation contract.
        """
        sid = self._next_sid
        target = self._ring.assign(sid, self._alive_or_raise())
        if self._live_sessions_on(target) >= self.config.max_sessions_per_worker:
            self.sessions_shed += 1
            raise OverloadError(
                f"worker {target} is at session capacity "
                f"({self.config.max_sessions_per_worker}); new session shed"
            )
        self._next_sid += 1
        # Canary routing: a deterministic stride of admitted opens goes
        # to the candidate version; everyone else stays incumbent.
        version = self._version
        if self._canary is not None and self._canary.route():
            version = self._canary.candidate_path
        self._journal.open(sid, version)
        session = _Session(worker=target, version=version)
        self._sessions[sid] = session
        self.sessions_opened += 1
        try:
            self._handle(session).send(("open", sid, version))
        except WorkerFailure as failure:
            self._recover(failure)  # replay re-opens the empty session
        return sid

    def feed(self, sid: int, features: np.ndarray, block: bool = False) -> None:
        """Queue one ``(t, D)`` chunk.

        With ``block=False`` (the default) the call never waits on the
        worker: past the backlog bound it raises :class:`OverloadError`
        — and does *not* journal the chunk, so retrying the same chunk
        later is safe.  With ``block=True`` the call waits (up to
        ``rpc_timeout_s``) for the worker to drain enough in-flight work
        to admit the chunk — backpressure instead of shedding, for
        clients that must not lose audio.
        """
        session = self._session(sid)
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._plan.input_dim:
            raise ShapeError(
                f"expected (t, {self._plan.input_dim}) features, "
                f"got {features.shape}"
            )
        if len(features) == 0:
            return
        deadline = time.monotonic() + self.config.rpc_timeout_s
        while True:
            # Health of the current home first: a dead worker re-homes
            # the session (replaying its journal) before admission.
            while True:
                handle = self._handle(session)
                try:
                    handle.drain()
                    handle.check_alive()
                    break
                except WorkerFailure as failure:
                    self._recover(failure)
            # Admission: bounded per-worker in-flight queue, in frames
            # and chunks.  An idle worker always accepts one chunk
            # (progress guarantee); past the bound the chunk is shed —
            # or, when blocking, waited out.
            backlog = handle.inflight_frames
            self.max_backlog_frames_seen = max(
                self.max_backlog_frames_seen, backlog
            )
            if backlog == 0 or (
                backlog + len(features) <= self.config.backlog_frames_bound
                and handle.inflight_chunks < self.config.max_pending_chunks
            ):
                break
            if not block or time.monotonic() >= deadline:
                self.chunks_shed += 1
                raise OverloadError(
                    f"worker {session.worker} backlog is {backlog} frames / "
                    f"{handle.inflight_chunks} chunks (bound "
                    f"{self.config.backlog_frames_bound} frames, "
                    f"{self.config.max_pending_chunks} chunks): chunk shed "
                    "to keep the max_wait_frames="
                    f"{self.config.stream.max_wait_frames} deadline"
                )
            time.sleep(0.001)
        self._journal.record(sid, features)
        try:
            handle.feed(sid, features)
        except WorkerFailure as failure:
            # The chunk is journaled, so recovery's replay delivers it.
            self._recover(failure)

    def poll(self, sid: int) -> List[int]:
        """Drain the phones committed for ``sid`` since the last poll."""
        session = self._session(sid)
        try:
            phones = self._handle(session).request(
                "poll", self.config.rpc_timeout_s, sid
            )
            session.committed.extend(phones)
        except WorkerFailure as failure:
            self._recover(failure)  # replay refreshed session.committed
        return self._deliver(session)

    def finish(self, sid: int) -> List[int]:
        """Close ``sid``; returns the phones not yet polled."""
        session = self._session(sid)
        # Journal the finish *before* the RPC: if the worker dies inside
        # it, replay re-finishes and the tail phones are still exact.
        self._journal.mark_finished(sid)
        try:
            phones = self._handle(session).request(
                "finish", self.config.rpc_timeout_s, sid
            )
            session.committed.extend(phones)
        except WorkerFailure as failure:
            self._recover(failure)  # replay re-ran the finish
        session.finished = True
        self.sessions_finished += 1
        undelivered = self._deliver(session)
        # Shadow-score a finished canary session (needs the journal, so
        # before close) — may trigger the promote/rollback decision.
        if (
            self._canary is not None
            and session.version == self._canary.candidate_path
        ):
            self._score_canary(sid, session)
        self._journal.close(sid)
        session.committed = []
        return undelivered

    def session_version(self, sid: int) -> str:
        """The plan version (artifact path) ``sid`` decodes under — the
        candidate during a canary, else the serving version (updated in
        place when a hot-swap carries the session across)."""
        session = self._sessions.get(sid)
        if session is None:
            raise StreamError(f"unknown session id {sid}")
        return session.version

    def _deliver(self, session: _Session) -> List[int]:
        undelivered = session.committed[session.delivered :]
        session.delivered = len(session.committed)
        return undelivered

    # -- supervision --------------------------------------------------------
    def check(self) -> List[int]:
        """Heartbeat sweep: ping every worker, recover the unresponsive.

        Returns the indices of workers that failed the sweep (each has
        been restarted or abandoned, with sessions re-homed).  A serving
        loop should call this periodically; stalls on idle workers are
        otherwise only caught at the next RPC.
        """
        failed: List[int] = []
        for index in list(self._supervisor.handles):
            if index in self._supervisor.dead:
                continue
            try:
                self._supervisor.ping(index, self.config.heartbeat_timeout_s)
            except WorkerFailure as failure:
                failed.append(index)
                self._recover(failure)
        return failed

    def _alive_or_raise(self) -> List[int]:
        alive = self._supervisor.alive_indices()
        if not alive:
            raise FabricError("no live workers left in the fabric")
        return alive

    def _recover(self, failure: WorkerFailure) -> None:
        """Restart/abandon failed workers and replay their sessions.

        Runs as a work queue because a replay can itself hit a second
        fault (e.g. a repeat-armed crash fault fires again mid-replay):
        each round restarts-or-abandons one worker, re-homes its
        sessions, and any worker that fails *during* replay is pushed
        back onto the queue.  Total rounds are bounded by the fleet's
        restart budget, with a hard cap as a backstop.
        """
        queue: List[WorkerFailure] = [failure]
        cap = self.config.num_workers * (self.config.max_restarts + 2) + 2
        rounds = 0
        while queue:
            rounds += 1
            if rounds > cap:
                raise FabricError(
                    f"recovery did not converge after {rounds - 1} rounds "
                    f"(last failure: {queue[-1]})"
                )
            current = queue.pop()
            handle = self._supervisor.handle_failure(current)
            orphans = [
                sid
                for sid, session in sorted(self._sessions.items())
                if session.worker == current.index and not session.finished
            ]
            if handle is None:
                # Permanently dead: the ring spreads its slice over the
                # survivors (or FabricError if there are none).
                if orphans:
                    alive = self._alive_or_raise()
                    for sid in orphans:
                        self._sessions[sid].worker = self._ring.assign(
                            sid, alive
                        )
            failed_now: set = set()
            for sid in orphans:
                target = self._sessions[sid].worker
                if target in failed_now:
                    continue  # recollected when its failure is processed
                try:
                    self._replay(sid)
                except WorkerFailure as nested:
                    failed_now.add(nested.index)
                    if all(f.index != nested.index for f in queue):
                        queue.append(nested)

    def _replay(self, sid: int) -> None:
        """Re-home one session: journal replay onto its (new) worker.

        The worker's ``rehome`` RPC decodes the journal segment by
        segment — each run of chunks under the plan version that
        originally saw it (a session that lived through a hot-swap has a
        pre-swap and a post-swap segment) — then adopts the
        reconstructed state into its live scheduler for the session's
        current version.  Chunk-exactness + deterministic decode make
        the replayed stream byte-identical to the uninterrupted one; the
        phones the fabric had already received must therefore be an
        exact prefix of the recovered stream — verified here, because a
        silent divergence would mean the exactness contract broke.
        """
        session = self._sessions[sid]
        handle = self._supervisor.handles[session.worker]
        handle.check_alive()
        phones = list(
            handle.request(
                "rehome",
                self.config.rpc_timeout_s,
                sid,
                self._journal.segments(sid),
                self._journal.finished(sid),
                session.version,
            )
        )
        if (
            len(phones) < len(session.committed)
            or phones[: len(session.committed)] != session.committed
        ):
            raise FabricError(
                f"replay of session {sid} diverged from its delivered "
                f"prefix (chunk-exactness violation): had "
                f"{session.committed}, replay produced {phones}"
            )
        session.committed = phones
        self.sessions_rehomed += 1

    # -- deployment: hot-swap -----------------------------------------------
    def _resolve_version(self, version) -> tuple:
        """``(artifact_path, registry_version_id)`` for a swap/canary
        target: a registry id on a registry-backed fabric, else a path."""
        if self._registry is not None and (
            isinstance(version, int) or _VERSION_ID.match(str(version))
        ):
            entry = self._registry.resolve(self._registry_name, version)
            self._registry.verify(entry)
            return str(entry.artifact_path), entry.version
        return str(version), None

    def _record_decision(self, version_id, decision: Dict, status: str) -> None:
        if self._registry is not None and version_id is not None:
            self._registry.record_decision(
                self._registry_name, version_id, decision, status=status
            )

    def swap(self, version) -> None:
        """Hot-swap the whole fleet onto a new same-architecture version.

        ``version`` is a registry version id on a registry-backed fabric
        (``"v3"``, ``"latest"``) or an artifact path otherwise.  Every
        live session carries its recurrent state across the swap and
        continues mid-utterance; no in-flight batch mixes plans (each
        worker flushes before swapping).  Raises
        :class:`~repro.errors.SwapError` — with the fleet untouched — on
        an architecture mismatch or while a canary is still undecided.
        """
        if self._canary is not None:
            raise SwapError(
                "a canary rollout is active; let it decide (or call "
                "decide_canary(force=True)) before swapping directly"
            )
        path, version_id = self._resolve_version(version)
        self._swap_to(path)
        self._record_decision(
            version_id,
            {"event": "hot_swap", "from": self._incumbent_id},
            status="serving",
        )
        if version_id is not None:
            self._incumbent_id = version_id

    def _swap_to(self, path: str) -> None:
        """Propagate a validated swap to every worker and live session."""
        from repro.engine.artifact import load_plan

        candidate = load_plan(path)
        if candidate.signature() != self._plan.signature():
            raise SwapError(
                "cannot hot-swap the fleet: architecture mismatch "
                f"(incumbent {self._plan.signature()}, "
                f"candidate {candidate.signature()})"
            )
        # Commit the new version first: restarts during the swap come up
        # serving it, and new opens route to it.
        self._supervisor.set_artifact(path)
        self._plan = candidate
        self._version = path
        self.plan_swaps += 1
        cap = self.config.num_workers * (self.config.max_restarts + 2) + 2
        rounds = 0
        while True:
            # Workers still owing a swap: any with a live pre-swap
            # session, plus (first round) the whole alive fleet so
            # session-less workers converge too.
            stale = {
                session.worker
                for session in self._sessions.values()
                if not session.finished
                and session.version != path
                and session.worker not in self._supervisor.dead
            }
            if rounds == 0:
                stale |= set(self._alive_or_raise())
            elif not stale:
                break
            rounds += 1
            if rounds > cap:
                raise FabricError(
                    f"hot-swap did not converge after {rounds - 1} rounds"
                )
            for index in sorted(stale):
                if index in self._supervisor.dead:
                    continue
                try:
                    self._supervisor.handles[index].request(
                        "swap", self.config.rpc_timeout_s, path
                    )
                except WorkerFailure as failure:
                    # Crash mid-swap: recovery replays this worker's
                    # sessions (pre-swap segments under the old plan)
                    # and the next round re-issues the swap.
                    self._recover(failure)
                    continue
                # Barrier + swap acknowledged: everything this worker
                # serves is now on the new plan — mark the journals so
                # later replays decode each chunk under the right plan.
                for sid, session in self._sessions.items():
                    if (
                        session.worker == index
                        and not session.finished
                        and session.version != path
                    ):
                        self._journal.mark_swap(sid, path)
                        session.version = path

    # -- deployment: canary rollout -----------------------------------------
    def start_canary(
        self, version, config: CanaryConfig = CanaryConfig()
    ) -> CanaryReport:
        """Start routing a fraction of new sessions to ``version``.

        The candidate must be architecture-compatible (checked now,
        :class:`~repro.errors.SwapError` otherwise — *numeric* drift is
        exactly what shadow-scoring is for and does not block the
        start).  Returns the live :class:`CanaryReport`; the decision
        fires automatically from :meth:`finish` once enough canary
        sessions were scored, or immediately on hopeless divergence.
        """
        from repro.engine.artifact import load_plan

        if self._canary is not None:
            raise SwapError("a canary rollout is already active")
        path, version_id = self._resolve_version(version)
        candidate = load_plan(path)
        if candidate.signature() != self._plan.signature():
            raise SwapError(
                "cannot canary: architecture mismatch "
                f"(incumbent {self._plan.signature()}, "
                f"candidate {candidate.signature()})"
            )
        self._canary = CanaryState(
            candidate_path=path,
            incumbent_path=self._version,
            shadow_plan=self._plan,
            config=config,
            candidate_version=version_id,
            incumbent_version=self._incumbent_id,
        )
        self._canary_report = self._canary.report
        return self._canary.report

    def canary_report(self) -> Optional[CanaryReport]:
        """The live (or last decided) canary report, if any."""
        return self._canary_report

    def _shadow_decode(self, chunks) -> List[int]:
        """Decode journaled chunks under the incumbent plan, parent-side
        — the reference stream canary agreement is scored against."""
        plan = self._canary.shadow_plan
        decoder = IncrementalDecoder(self.config.stream.min_duration)
        state = None
        phones: List[int] = []
        for chunk in chunks:
            logits, state = plan.run_chunk(chunk[:, None, :], state)
            phones.extend(decoder.push(logits[:, 0, :].argmax(axis=1)))
        return phones + decoder.finish()

    def _score_canary(self, sid: int, session: _Session) -> None:
        shadow = self._shadow_decode(self._journal.chunks(sid))
        self._canary.score(agreed=(shadow == session.committed))
        if self._canary.window_full() or self._canary.agreement_unreachable():
            self.decide_canary()

    def decide_canary(self, force: bool = False) -> CanaryReport:
        """Decide the active canary now (normally called internally).

        ``force=True`` decides on whatever evidence exists — the drain
        hook for harnesses whose traffic ended before the window filled;
        with no scored sessions it rolls back (no evidence, no
        promotion).  Promotion hot-swaps the fleet onto the candidate;
        rollback stops routing and lets live canary sessions drain on
        the candidate.  Either way the decision is recorded in the
        report and, when registry-backed, the candidate's metadata.
        """
        canary = self._canary
        if canary is None:
            raise SwapError("no canary rollout is active")
        report = canary.report
        if (
            not force
            and not canary.window_full()
            and not canary.agreement_unreachable()
        ):
            raise SwapError(
                f"canary window not full ({report.sessions_scored}/"
                f"{canary.config.decide_after} scored); use force=True"
            )
        fleet = self.stats()
        candidate_lat = fleet.version_latencies(canary.candidate_path)
        incumbent_lat = fleet.version_latencies(canary.incumbent_path)
        report.candidate_p95_s = _percentile(candidate_lat, 95.0)
        report.incumbent_p95_s = _percentile(incumbent_lat, 95.0)
        agreement_ok = (
            report.sessions_scored > 0
            and report.agreement >= canary.config.min_agreement
        )
        latency_ok = (
            not candidate_lat
            or not incumbent_lat
            or report.candidate_p95_s
            <= report.incumbent_p95_s * canary.config.max_p95_ratio
        )
        if agreement_ok and latency_ok:
            report.decision = "promote"
            report.reason = (
                f"agreement {report.agreement:.3f} over "
                f"{report.sessions_scored} sessions, candidate p95 "
                f"{report.candidate_p95_s * 1e3:.2f}ms vs incumbent "
                f"{report.incumbent_p95_s * 1e3:.2f}ms"
            )
        else:
            report.decision = "rollback"
            if not report.sessions_scored:
                report.reason = "no canary sessions scored"
            elif not agreement_ok:
                report.reason = (
                    f"decode divergence: agreement {report.agreement:.3f} "
                    f"< {canary.config.min_agreement:.3f} over "
                    f"{report.sessions_scored} sessions"
                )
            else:
                report.reason = (
                    f"latency regression: candidate p95 "
                    f"{report.candidate_p95_s * 1e3:.2f}ms > "
                    f"{canary.config.max_p95_ratio:.2f}x incumbent "
                    f"{report.incumbent_p95_s * 1e3:.2f}ms"
                )
        # Stop routing before any promote-swap so open() and the swap's
        # convergence loop see no active canary.
        self._canary = None
        self._canary_report = report
        if report.decision == "promote":
            self._swap_to(canary.candidate_path)
            self._record_decision(
                report.candidate_version, report.to_dict(), status="serving"
            )
            if report.candidate_version is not None:
                if self._incumbent_id is not None:
                    self._record_decision(
                        self._incumbent_id,
                        {
                            "event": "superseded",
                            "by": report.candidate_version,
                        },
                        status="superseded",
                    )
                self._incumbent_id = report.candidate_version
        else:
            self._record_decision(
                report.candidate_version, report.to_dict(), status="rolled_back"
            )
        return report

    # -- observability ------------------------------------------------------
    def stats(self) -> FleetStats:
        """Fleet rollup: per-worker scheduler snapshots + fabric counters.

        Unreachable workers get a ``snapshot=None`` row (and trigger
        recovery as a side effect, like any other touchpoint).
        """
        workers: List[WorkerStats] = []
        for index, handle in sorted(self._supervisor.handles.items()):
            row = WorkerStats(
                index=index,
                alive=index not in self._supervisor.dead and handle.alive(),
                incarnation=max(handle.incarnation, 0),
                restarts=self._supervisor.restarts[index],
            )
            if row.alive:
                try:
                    row.snapshot = handle.request(
                        "stats", self.config.rpc_timeout_s
                    )
                except WorkerFailure as failure:
                    row.alive = False
                    self._recover(failure)
            workers.append(row)
        return FleetStats(
            workers=workers,
            sessions_opened=self.sessions_opened,
            sessions_finished=self.sessions_finished,
            sessions_rehomed=self.sessions_rehomed,
            sessions_shed=self.sessions_shed,
            chunks_shed=self.chunks_shed,
            restarts=sum(self._supervisor.restarts.values()),
            crashes_detected=self._supervisor.crashes_detected,
            stalls_detected=self._supervisor.stalls_detected,
            plan_swaps=self.plan_swaps,
            max_backlog_frames_seen=self.max_backlog_frames_seen,
            backlog_frames_bound=self.config.backlog_frames_bound,
        )


__all__ = [
    "ServingFabric",
    "FabricConfig",
    "FleetStats",
    "WorkerStats",
    "CanaryConfig",
    "CanaryReport",
]
