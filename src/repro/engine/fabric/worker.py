"""Worker process: compiled artifacts behind per-version stream schedulers.

Each worker is a separate OS process — the fabric's unit of isolation
(a crash kills one worker's sessions, not the fleet) and of parallelism
(each process owns its own GIL).  A worker :func:`~repro.engine.artifact.load_plan`\\ s
the compiled artifacts it is told to serve and drives one local
:class:`~repro.engine.streaming.StreamScheduler` *per live plan
version* (normally one; two while a canary routes new sessions to a
candidate version), so everything the single-process runtime guarantees
(deadline batching, chunk-exact decode) holds *within* a worker
unchanged — and chunks of different plan versions never share a batch.

Transport is one duplex pipe per worker carrying small picklable
tuples.  The protocol is deliberately asymmetric:

* ``open``/``feed`` are **fire-and-forget** — the router never blocks on
  the data path.  Each processed feed is acknowledged with a
  *cumulative* sequence number (``("ack", seq)``), which is what the
  router's backpressure accounting drains; cumulative acks mean a
  dropped ack message is healed by the next one.
* ``poll``/``finish``/``flush``/``stats``/``ping`` are **synchronous
  RPCs** tagged with a request id; the router's timeout on the reply
  doubles as the stall detector.
* ``swap`` is the hot-swap RPC: flush every scheduler (the barrier — no
  in-flight batch mixes plans), then
  :meth:`~repro.engine.streaming.StreamScheduler.swap_plan` each onto
  the target version, carrying all live sessions' state across.
* ``rehome`` is the recovery RPC: replay a crashed session's journaled
  chunks — segment by segment, each under the plan version that
  originally decoded it — then adopt the reconstructed state into the
  live scheduler and return the full phone stream for the fabric's
  delivered-prefix check.

The parent-side endpoint is :class:`WorkerHandle`; any transport problem
(dead process, broken pipe, RPC timeout) surfaces as
:class:`WorkerFailure` carrying the worker index and a crash-vs-stall
classification, which the supervisor turns into restart + re-home.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.fabric.faults import FaultConfig, FaultInjector
from repro.engine.streaming import StreamConfig, StreamScheduler
from repro.errors import FabricError


@dataclass
class WorkerFailure(Exception):
    """A worker stopped serving: crashed (process dead) or stalled
    (alive but unresponsive past the heartbeat timeout)."""

    index: int
    reason: str  # "crash" | "stall"
    detail: str = ""

    def __str__(self) -> str:
        return f"worker {self.index} {self.reason}: {self.detail}"


def _stats_snapshot(
    schedulers: List[StreamScheduler], versions: List[str]
) -> Dict:
    """Picklable rollup of the worker-local scheduler stats.

    Top-level keys aggregate across the worker's schedulers (the shape
    single-version deployments always saw); ``schedulers`` breaks the
    same counters out per plan version — what canary shadow-scoring
    compares candidate-vs-incumbent latency on.
    """
    rows = []
    for scheduler, version in zip(schedulers, versions):
        stats = scheduler.stats
        rows.append(
            {
                "version": version,
                "sessions_opened": stats.sessions_opened,
                "sessions_finished": stats.sessions_finished,
                "chunks": stats.chunks,
                "batches": stats.batches,
                "batched_chunks": stats.batched_chunks,
                "frames": stats.frames,
                "wait_frames": stats.wait_frames,
                "plan_swaps": stats.plan_swaps,
                "latencies_s": list(stats.chunk_latency_s),
            }
        )
    merged: Dict = {
        key: sum(row[key] for row in rows)
        for key in (
            "sessions_opened",
            "sessions_finished",
            "chunks",
            "batches",
            "batched_chunks",
            "frames",
            "wait_frames",
            "plan_swaps",
        )
    }
    merged["latencies_s"] = [
        latency for row in rows for latency in row["latencies_s"]
    ]
    merged["schedulers"] = rows
    return merged


def worker_main(
    conn,
    artifact_path: str,
    stream_config: StreamConfig,
    fault_config: Optional[FaultConfig],
    worker_index: int,
) -> None:
    """Entry point of a worker process: serve until ``close`` or EOF."""
    # Import here: the child must not pay for (or depend on) anything the
    # parent happened to have imported beyond the serving stack.
    from repro.engine.artifact import load_plan
    from repro.speech.decoder import IncrementalDecoder

    injector = FaultInjector(fault_config)
    plans: Dict[str, object] = {}

    def plan_for(path: str):
        if path not in plans:
            plans[path] = load_plan(path)
        return plans[path]

    primary = str(artifact_path)
    try:
        plan_for(primary)
    except Exception as exc:  # surfaced by the supervisor as a crash
        try:
            conn.send(("fatal", f"load_plan({artifact_path!r}) failed: {exc}"))
        finally:
            conn.close()
        return
    schedulers: List[StreamScheduler] = []
    versions: List[str] = []
    open_target: Dict[str, int] = {}  # version -> scheduler for new opens
    local: Dict[int, Tuple[int, int]] = {}  # fabric sid -> (sched, local sid)

    def scheduler_for(version: str) -> int:
        index = open_target.get(version)
        if index is None:
            schedulers.append(StreamScheduler(plan_for(version), stream_config))
            versions.append(version)
            index = len(schedulers) - 1
            open_target[version] = index
        return index

    scheduler_for(primary)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        try:
            if kind == "open":
                version = message[2] if len(message) > 2 else primary
                index = scheduler_for(version or primary)
                local[message[1]] = (index, schedulers[index].open())
            elif kind == "feed":
                _, sid, features, seq = message
                injector.on_chunk()
                index, local_sid = local[sid]
                schedulers[index].feed(local_sid, features)
                injector.before_send()
                if not injector.drop_ack():
                    conn.send(("ack", seq))
            elif kind == "poll":
                _, sid, rid = message
                index, local_sid = local[sid]
                injector.before_send()
                conn.send(("phones", rid, schedulers[index].poll(local_sid)))
            elif kind == "finish":
                _, sid, rid = message
                index, local_sid = local.pop(sid)
                phones = schedulers[index].finish(local_sid)
                injector.before_send()
                conn.send(("phones", rid, phones))
            elif kind == "flush":
                # Replay barrier: run everything queued so a follow-up
                # poll observes every journaled chunk's commitments.
                for scheduler in schedulers:
                    scheduler.flush()
                conn.send(("pong", message[1]))
            elif kind == "swap":
                _, to_version, rid = message
                injector.on_swap()
                plan = plan_for(to_version)
                # swap_plan flushes each scheduler first — the barrier
                # that keeps any in-flight batch on a single plan.
                for scheduler in schedulers:
                    scheduler.swap_plan(plan)
                for index in range(len(versions)):
                    versions[index] = to_version
                open_target = {
                    to_version: open_target.get(
                        to_version, open_target.get(primary, 0)
                    )
                }
                primary = to_version
                conn.send(("pong", rid))
            elif kind == "rehome":
                _, sid, segments, finished, target, rid = message
                state = None
                decoder = IncrementalDecoder(stream_config.min_duration)
                committed: List[int] = []
                frames = 0
                for version, chunks in segments:
                    plan = plan_for(version or primary)
                    if state is not None:
                        state = plan.adapt_state(state)
                    for chunk in chunks:
                        # Replayed chunks count as processed chunks for
                        # fault injection: a repeat-armed crash fault
                        # fires mid-replay too (the restart-budget path).
                        injector.on_chunk()
                        logits, state = plan.run_chunk(chunk[:, None, :], state)
                        committed.extend(
                            decoder.push(logits[:, 0, :].argmax(axis=1))
                        )
                        frames += len(chunk)
                if finished:
                    committed.extend(decoder.finish())
                else:
                    index = scheduler_for(target or primary)
                    local[sid] = (
                        index,
                        schedulers[index].adopt(
                            state, decoder, committed=None, frames=frames
                        ),
                    )
                injector.before_send()
                conn.send(("phones", rid, committed))
            elif kind == "stats":
                conn.send(
                    ("stats", message[1], _stats_snapshot(schedulers, versions))
                )
            elif kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "close":
                break
            else:  # unknown message: protocol bug, report and continue
                conn.send(("error", None, f"unknown message kind {kind!r}"))
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:
            # One bad request must not kill the other sessions on this
            # worker: report and keep serving.
            try:
                conn.send(("error", None, f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class WorkerHandle:
    """Parent-side endpoint of one worker process (transport only).

    Lifecycle (spawn/restart) belongs to the supervisor; this class owns
    the pipe, the request-id counter, the backpressure accounting
    (in-flight chunks/frames between ``feed`` and its cumulative ack),
    and failure classification.
    """

    def __init__(self, index: int, ctx) -> None:
        self.index = index
        self.incarnation = -1  # bumped to 0 by the first spawn()
        self._ctx = ctx
        self.process = None
        self.conn = None
        self._next_seq = 0
        self._next_rid = 0
        #: feed seq -> frames, not yet acknowledged (insertion-ordered,
        #: so a cumulative ack drains a prefix).
        self._pending: Dict[int, int] = {}
        self._replies: Dict[int, object] = {}
        self._errors: List[str] = []
        self._fatal: Optional[str] = None

    # -- lifecycle (driven by the supervisor) -----------------------------
    def spawn(
        self,
        artifact_path: str,
        stream_config: StreamConfig,
        fault_config: Optional[FaultConfig],
    ) -> None:
        self.incarnation += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                str(artifact_path),
                stream_config,
                fault_config,
                self.index,
            ),
            name=f"repro-fabric-worker-{self.index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self._next_seq = 0
        self._pending.clear()
        self._replies.clear()
        self._errors.clear()
        self._fatal = None

    def kill(self) -> None:
        """Hard-stop the process (used on stalls) and drop the pipe."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self._fatal is None
        )

    # -- backpressure accounting ------------------------------------------
    @property
    def inflight_chunks(self) -> int:
        return len(self._pending)

    @property
    def inflight_frames(self) -> int:
        return sum(self._pending.values())

    # -- transport ---------------------------------------------------------
    def _failure(self, reason: str, detail: str) -> WorkerFailure:
        return WorkerFailure(self.index, reason, detail)

    def _classify_send_error(self, exc: Exception) -> WorkerFailure:
        return self._failure("crash", f"pipe send failed: {exc}")

    def _dispatch(self, message) -> None:
        kind = message[0]
        if kind == "ack":
            # Cumulative: everything at or below the acked seq is done.
            seq = message[1]
            for pending_seq in [s for s in self._pending if s <= seq]:
                del self._pending[pending_seq]
        elif kind in ("phones", "stats", "pong"):
            self._replies[message[1]] = message[2] if len(message) > 2 else True
        elif kind == "error":
            self._errors.append(message[2])
        elif kind == "fatal":
            self._fatal = message[1]

    def drain(self) -> None:
        """Consume every message already in the pipe (non-blocking)."""
        if self.conn is None:
            return
        try:
            while self.conn.poll(0):
                self._dispatch(self.conn.recv())
        except (EOFError, OSError):
            pass  # the liveness check below reports the death

    def check_alive(self) -> None:
        """Raise :class:`WorkerFailure` if the process is gone."""
        self.drain()
        if self._fatal is not None:
            raise self._failure("crash", self._fatal)
        if self.process is not None and not self.process.is_alive():
            raise self._failure(
                "crash", f"process exited with code {self.process.exitcode}"
            )

    def send(self, message) -> None:
        """Fire-and-forget send (``open``/``feed``/``close``)."""
        self.check_alive()
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise self._classify_send_error(exc)

    def feed(self, sid: int, features) -> int:
        """Send one chunk; returns its seq after recording it in-flight."""
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = len(features)
        try:
            self.send(("feed", sid, features, seq))
        except WorkerFailure:
            # The chunk never reached the worker; replay will re-send it.
            del self._pending[seq]
            raise
        return seq

    def request(self, kind: str, timeout: float, *args):
        """Synchronous RPC: ``poll``/``finish``/``flush``/``stats``/
        ``ping``/``swap``/``rehome``.  ``args`` are the kind-specific
        operands (a session id, a swap target version, a replay payload),
        placed between the kind and the request id.

        The reply wait doubles as the heartbeat: no reply within
        ``timeout`` while the process is alive is classified as a stall.
        """
        rid = self._next_rid
        self._next_rid += 1
        self.send((kind, *args, rid))
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.check_alive()  # prefer the crash classification
                raise self._failure(
                    "stall", f"no {kind} reply within {timeout:.2f}s"
                )
            try:
                if self.conn.poll(min(remaining, 0.05)):
                    self._dispatch(self.conn.recv())
            except (EOFError, OSError):
                self.check_alive()
                raise self._failure("crash", "pipe closed mid-request")
            if self._errors:
                # The worker survived but a request raised inside it
                # (a protocol/validation bug, not a process fault): the
                # expected reply may never come, so surface it now.
                errors, self._errors = self._errors, []
                raise FabricError(
                    f"worker {self.index} reported: " + "; ".join(errors)
                )
            if rid in self._replies:
                return self._replies.pop(rid)
            if self.process is not None and not self.process.is_alive():
                # Drain whatever made it out before the death.
                self.drain()
                if rid in self._replies:
                    return self._replies.pop(rid)
                raise self._failure(
                    "crash",
                    f"process exited with code {self.process.exitcode} "
                    f"before replying to {kind}",
                )

    def close(self) -> None:
        """Graceful shutdown: ask the loop to exit, then join/kill."""
        if self.conn is not None:
            try:
                self.conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        if self.process is not None:
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None


__all__ = ["WorkerHandle", "WorkerFailure", "worker_main"]
