"""Supervised multi-process serving fabric.

Public surface: :class:`ServingFabric` (the client-facing facade) and
its config/stat types, the canary-rollout types, plus the building
blocks — session journal, consistent-hash router, supervisor, worker
transport — and the deterministic fault-injection layer that the
robustness tests and ``stream-bench --chaos`` drive.
"""

from repro.engine.fabric.canary import CanaryConfig, CanaryReport
from repro.engine.fabric.fabric import (
    FabricConfig,
    FleetStats,
    ServingFabric,
    WorkerStats,
)
from repro.engine.fabric.faults import CRASH_EXIT_CODE, FaultConfig, FaultInjector
from repro.engine.fabric.journal import SessionJournal
from repro.engine.fabric.router import HashRing
from repro.engine.fabric.supervisor import Supervisor
from repro.engine.fabric.worker import WorkerFailure, WorkerHandle

__all__ = [
    "ServingFabric",
    "FabricConfig",
    "FleetStats",
    "WorkerStats",
    "CanaryConfig",
    "CanaryReport",
    "FaultConfig",
    "FaultInjector",
    "CRASH_EXIT_CODE",
    "SessionJournal",
    "HashRing",
    "Supervisor",
    "WorkerFailure",
    "WorkerHandle",
]
