"""Per-session chunk journals: the replay log behind crash recovery.

The fabric's recovery guarantee rests on two facts: the streaming
runtime is *chunk-exact* (any chunk split of an utterance decodes
byte-identically — PR 4's sweep), and decoding is deterministic.  So if
the router keeps every feature chunk it ever accepted for a session, a
crashed worker's sessions can be re-homed by replaying their journals
into a fresh scheduler: the replayed phone stream is byte-identical to
the uninterrupted one, and the phones already delivered to the client
form an exact prefix of it — recovery just skips that prefix.

:class:`SessionJournal` is that log.  It also backs the optional journal
hook on :class:`~repro.engine.streaming.StreamScheduler` for
single-process deployments that want the same replayability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StreamError


@dataclass
class _JournalEntry:
    chunks: List[np.ndarray] = field(default_factory=list)
    frames: int = 0
    finished: bool = False
    #: The plan version (artifact path) the session opened under, and
    #: the swap markers: ``(chunk_index, new_version)`` — chunks before
    #: the index were decoded under the previous version.
    version: Optional[str] = None
    marks: List[Tuple[int, str]] = field(default_factory=list)


class SessionJournal:
    """Ordered log of every accepted feature chunk, per session.

    Memory is bounded by the live sessions' fed audio: a journal entry
    is dropped by :meth:`close` once its session has finished *and* its
    phones have been delivered — at that point there is nothing left to
    recover.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, _JournalEntry] = {}

    def _entry(self, sid: int) -> _JournalEntry:
        entry = self._entries.get(sid)
        if entry is None:
            raise StreamError(f"no journal for session id {sid}")
        return entry

    def open(self, sid: int, version: Optional[str] = None) -> None:
        """Start ``sid``'s log; ``version`` records which plan version
        (artifact path) the session opened under, so a post-swap replay
        can decode each chunk under the plan that originally saw it."""
        if sid in self._entries:
            raise StreamError(f"journal for session {sid} already open")
        self._entries[sid] = _JournalEntry(version=version)

    def record(self, sid: int, features: np.ndarray) -> None:
        """Append an accepted chunk (call only after validation)."""
        entry = self._entry(sid)
        if entry.finished:
            raise StreamError(f"session {sid} already finished")
        entry.chunks.append(features)
        entry.frames += len(features)

    def mark_finished(self, sid: int) -> None:
        self._entry(sid).finished = True

    def mark_swap(self, sid: int, version: str) -> None:
        """Record that chunks from here on decode under ``version``.

        Called by the fabric once the session's worker has acknowledged
        a hot-swap (flush barrier included), i.e. every chunk already
        journaled was decoded under the previous version.  Consecutive
        marks with no chunks in between collapse to the latest version.
        """
        entry = self._entry(sid)
        position = len(entry.chunks)
        if entry.marks and entry.marks[-1][0] == position:
            entry.marks[-1] = (position, version)
        elif not entry.marks and position == 0:
            entry.version = version
        else:
            entry.marks.append((position, version))

    def chunks(self, sid: int) -> Tuple[np.ndarray, ...]:
        """The replay log: every chunk accepted for ``sid``, in order."""
        return tuple(self._entry(sid).chunks)

    def version(self, sid: int) -> Optional[str]:
        """The plan version the session is currently decoding under."""
        entry = self._entry(sid)
        return entry.marks[-1][1] if entry.marks else entry.version

    def segments(self, sid: int) -> List[Tuple[Optional[str], Tuple[np.ndarray, ...]]]:
        """The replay log split at swap markers: ``(version, chunks)``
        runs in order.  Always at least one segment (possibly empty), so
        a replayer knows the version even for a chunkless session."""
        entry = self._entry(sid)
        segments: List[Tuple[Optional[str], Tuple[np.ndarray, ...]]] = []
        start, version = 0, entry.version
        for position, new_version in entry.marks:
            segments.append((version, tuple(entry.chunks[start:position])))
            start, version = position, new_version
        segments.append((version, tuple(entry.chunks[start:])))
        return segments

    def frames(self, sid: int) -> int:
        return self._entry(sid).frames

    def finished(self, sid: int) -> bool:
        return self._entry(sid).finished

    def sessions(self) -> List[int]:
        return list(self._entries)

    def __contains__(self, sid: int) -> bool:
        return sid in self._entries

    def close(self, sid: int) -> None:
        """Drop ``sid``'s log (nothing left to recover)."""
        self._entries.pop(sid, None)


__all__ = ["SessionJournal"]
