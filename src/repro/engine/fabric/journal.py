"""Per-session chunk journals: the replay log behind crash recovery.

The fabric's recovery guarantee rests on two facts: the streaming
runtime is *chunk-exact* (any chunk split of an utterance decodes
byte-identically — PR 4's sweep), and decoding is deterministic.  So if
the router keeps every feature chunk it ever accepted for a session, a
crashed worker's sessions can be re-homed by replaying their journals
into a fresh scheduler: the replayed phone stream is byte-identical to
the uninterrupted one, and the phones already delivered to the client
form an exact prefix of it — recovery just skips that prefix.

:class:`SessionJournal` is that log.  It also backs the optional journal
hook on :class:`~repro.engine.streaming.StreamScheduler` for
single-process deployments that want the same replayability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import StreamError


@dataclass
class _JournalEntry:
    chunks: List[np.ndarray] = field(default_factory=list)
    frames: int = 0
    finished: bool = False


class SessionJournal:
    """Ordered log of every accepted feature chunk, per session.

    Memory is bounded by the live sessions' fed audio: a journal entry
    is dropped by :meth:`close` once its session has finished *and* its
    phones have been delivered — at that point there is nothing left to
    recover.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, _JournalEntry] = {}

    def _entry(self, sid: int) -> _JournalEntry:
        entry = self._entries.get(sid)
        if entry is None:
            raise StreamError(f"no journal for session id {sid}")
        return entry

    def open(self, sid: int) -> None:
        if sid in self._entries:
            raise StreamError(f"journal for session {sid} already open")
        self._entries[sid] = _JournalEntry()

    def record(self, sid: int, features: np.ndarray) -> None:
        """Append an accepted chunk (call only after validation)."""
        entry = self._entry(sid)
        if entry.finished:
            raise StreamError(f"session {sid} already finished")
        entry.chunks.append(features)
        entry.frames += len(features)

    def mark_finished(self, sid: int) -> None:
        self._entry(sid).finished = True

    def chunks(self, sid: int) -> Tuple[np.ndarray, ...]:
        """The replay log: every chunk accepted for ``sid``, in order."""
        return tuple(self._entry(sid).chunks)

    def frames(self, sid: int) -> int:
        return self._entry(sid).frames

    def finished(self, sid: int) -> bool:
        return self._entry(sid).finished

    def sessions(self) -> List[int]:
        return list(self._entries)

    def __contains__(self, sid: int) -> bool:
        return sid in self._entries

    def close(self, sid: int) -> None:
        """Drop ``sid``'s log (nothing left to recover)."""
        self._entries.pop(sid, None)


__all__ = ["SessionJournal"]
