"""Worker lifecycle: spawn, heartbeat, restart with backoff, give up.

The supervisor owns every :class:`~repro.engine.fabric.worker.WorkerHandle`
and is the only code that spawns or kills worker processes.  Its policy:

* **Detection is synchronous.**  There is no supervisor thread: liveness
  is checked on the operations that already touch a worker (every RPC
  timeout is a heartbeat) plus an explicit :meth:`check` sweep that
  pings every worker.  Synchronous supervision keeps the fabric
  deterministic — fault-injection tests replay identically because
  nothing races the test's own calls.
* **Crashes and stalls converge to the same path.**  A stalled worker
  (alive but past the heartbeat timeout) is killed first; after that
  both cases are "process gone, sessions orphaned" and take the same
  restart + re-home path.
* **Restarts back off exponentially** (``backoff_base_s * 2**(n-1)``,
  capped) so a crash-looping artifact cannot hot-loop the host, and
  each worker has a restart budget (``max_restarts``); past it the
  worker is marked permanently dead and the hash ring routes its slice
  to the survivors.  Fault injection arms only in the incarnations its
  :meth:`~repro.engine.fabric.faults.FaultConfig.applies_to` selects, so
  a restarted worker is clean unless the fault plan says otherwise.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.engine.fabric.faults import FaultConfig
from repro.engine.fabric.worker import WorkerFailure, WorkerHandle
from repro.engine.streaming import StreamConfig


class Supervisor:
    """Spawns and restarts the worker fleet; tracks failure counters."""

    def __init__(
        self,
        ctx,
        num_workers: int,
        artifact_path: str,
        stream_config: StreamConfig,
        faults: Optional[FaultConfig],
        max_restarts: int,
        backoff_base_s: float,
        backoff_cap_s: float,
    ) -> None:
        self._artifact_path = artifact_path
        self._stream_config = stream_config
        self._faults = faults
        self._max_restarts = max_restarts
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self.handles: Dict[int, WorkerHandle] = {
            index: WorkerHandle(index, ctx) for index in range(num_workers)
        }
        self.dead: set = set()
        self.restarts: Dict[int, int] = {index: 0 for index in range(num_workers)}
        self.crashes_detected = 0
        self.stalls_detected = 0
        #: Backoff seconds actually slept before each restart, in order —
        #: the tests assert the schedule instead of timing sleeps.
        self.backoff_history: List[float] = []
        for index, handle in self.handles.items():
            handle.spawn(artifact_path, stream_config, self._fault_for(index, 0))

    def set_artifact(self, artifact_path: str) -> None:
        """Retarget future spawns/restarts at a new artifact version.

        Called at the *start* of a fabric hot-swap: a worker that crashes
        mid-swap restarts already serving the new version, and its
        orphaned sessions re-home with per-version journal segments.
        """
        self._artifact_path = str(artifact_path)

    @property
    def artifact_path(self) -> str:
        return self._artifact_path

    def _fault_for(self, index: int, incarnation: int) -> Optional[FaultConfig]:
        if self._faults is not None and self._faults.applies_to(index, incarnation):
            return self._faults
        return None

    def alive_indices(self) -> List[int]:
        return [
            index
            for index, handle in self.handles.items()
            if index not in self.dead and handle.alive()
        ]

    def backoff_for(self, restart_number: int) -> float:
        """The sleep before restart ``n`` (1-based): exponential, capped."""
        if self._backoff_base_s <= 0:
            return 0.0
        return min(
            self._backoff_base_s * (2.0 ** (restart_number - 1)),
            self._backoff_cap_s,
        )

    def handle_failure(self, failure: WorkerFailure) -> Optional[WorkerHandle]:
        """Restart the failed worker, or mark it dead past its budget.

        Returns the restarted handle, or ``None`` if the worker is now
        permanently dead (its sessions must re-home elsewhere).
        """
        index = failure.index
        handle = self.handles[index]
        if failure.reason == "stall":
            self.stalls_detected += 1
        else:
            self.crashes_detected += 1
        handle.kill()  # no-op for a crash; required for a stall
        if self.restarts[index] >= self._max_restarts:
            self.dead.add(index)
            return None
        self.restarts[index] += 1
        backoff = self.backoff_for(self.restarts[index])
        self.backoff_history.append(backoff)
        if backoff > 0:
            time.sleep(backoff)
        handle.spawn(
            self._artifact_path,
            self._stream_config,
            self._fault_for(index, handle.incarnation + 1),
        )
        return handle

    def ping(self, index: int, timeout: float) -> None:
        """Heartbeat one worker; raises :class:`WorkerFailure`."""
        self.handles[index].request("ping", timeout)

    def shutdown(self) -> None:
        for index, handle in self.handles.items():
            if index not in self.dead:
                handle.close()


__all__ = ["Supervisor"]
