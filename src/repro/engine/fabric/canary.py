"""Canary rollout: route a fraction of new sessions to a candidate plan.

A deployment should not be a leap of faith.  During a canary started
with :meth:`ServingFabric.start_canary
<repro.engine.fabric.fabric.ServingFabric.start_canary>`, the fabric

* routes a configurable fraction of **new** sessions to the candidate
  version (deterministically — the ``floor((n+1)f) > floor(nf)`` stride
  admits exactly ``fraction`` of opens with no RNG, so chaos runs
  replay identically);
* **shadow-scores** every finished canary session: the session's
  journaled chunks are re-decoded parent-side under the *incumbent*
  plan, and the phone streams are compared — decode agreement is the
  correctness signal, per-version p95 chunk latency (from the workers'
  per-scheduler stats) the performance signal;
* **decides automatically**: after ``decide_after`` scored sessions the
  candidate is promoted (hot-swapped fleet-wide) when agreement and
  latency pass, or rolled back otherwise.  A divergence that already
  makes the agreement bar unreachable rolls back immediately — bad
  numerics should not wait out the full window.  Rolled-back canary
  sessions drain on the candidate (their decode is still exact *for the
  candidate*); incumbent sessions are never touched.

The decision lands in a :class:`CanaryReport` (and, when the fabric is
registry-backed, in the candidate version's registry metadata), so the
``why is vN serving?`` audit trail survives the process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class CanaryConfig:
    """Rollout knobs.

    ``fraction`` of new sessions route to the candidate; the decision
    fires after ``decide_after`` canary sessions have finished and been
    shadow-scored.  Promotion requires decode agreement >=
    ``min_agreement`` *and* candidate p95 chunk latency <= incumbent
    p95 * ``max_p95_ratio`` (the latency gate passes when either side
    has no samples yet — insufficient data must not block on noise).
    """

    fraction: float = 0.25
    decide_after: int = 4
    min_agreement: float = 1.0
    max_p95_ratio: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.decide_after < 1:
            raise ConfigError(
                f"decide_after must be >= 1, got {self.decide_after}"
            )
        if not 0.0 <= self.min_agreement <= 1.0:
            raise ConfigError(
                f"min_agreement must be in [0, 1], got {self.min_agreement}"
            )
        if self.max_p95_ratio <= 0:
            raise ConfigError(
                f"max_p95_ratio must be > 0, got {self.max_p95_ratio}"
            )


@dataclass
class CanaryReport:
    """What a canary observed and what was decided."""

    candidate: str  # artifact path of the candidate version
    incumbent: str
    config: CanaryConfig
    candidate_version: Optional[str] = None  # registry id when known
    incumbent_version: Optional[str] = None
    sessions_routed: int = 0
    sessions_scored: int = 0
    sessions_agreed: int = 0
    candidate_p95_s: float = 0.0
    incumbent_p95_s: float = 0.0
    decision: Optional[str] = None  # "promote" | "rollback" | None (open)
    reason: str = ""

    @property
    def agreement(self) -> float:
        """Fraction of scored canary sessions that decoded identically
        to the incumbent shadow (1.0 while nothing is scored yet)."""
        if not self.sessions_scored:
            return 1.0
        return self.sessions_agreed / self.sessions_scored

    def to_dict(self) -> dict:
        """JSON-safe form (what lands in registry history / bench rows)."""
        return {
            "event": "canary",
            "decision": self.decision,
            "reason": self.reason,
            "candidate": self.candidate,
            "incumbent": self.incumbent,
            "candidate_version": self.candidate_version,
            "incumbent_version": self.incumbent_version,
            "sessions_routed": self.sessions_routed,
            "sessions_scored": self.sessions_scored,
            "sessions_agreed": self.sessions_agreed,
            "agreement": self.agreement,
            "candidate_p95_s": self.candidate_p95_s,
            "incumbent_p95_s": self.incumbent_p95_s,
        }


class CanaryState:
    """Fabric-internal live canary: routing stride + running score."""

    def __init__(
        self,
        candidate_path: str,
        incumbent_path: str,
        shadow_plan,
        config: CanaryConfig,
        candidate_version: Optional[str] = None,
        incumbent_version: Optional[str] = None,
    ) -> None:
        self.candidate_path = candidate_path
        self.incumbent_path = incumbent_path
        #: Parent-side incumbent plan the shadow decode runs on.
        self.shadow_plan = shadow_plan
        self.config = config
        self.report = CanaryReport(
            candidate=candidate_path,
            incumbent=incumbent_path,
            config=config,
            candidate_version=candidate_version,
            incumbent_version=incumbent_version,
        )
        self._opened = 0

    def route(self) -> bool:
        """Deterministic stride: does the next admitted session canary?"""
        n = self._opened
        self._opened += 1
        take = math.floor((n + 1) * self.config.fraction) > math.floor(
            n * self.config.fraction
        )
        if take:
            self.report.sessions_routed += 1
        return take

    def score(self, agreed: bool) -> None:
        self.report.sessions_scored += 1
        if agreed:
            self.report.sessions_agreed += 1

    def agreement_unreachable(self) -> bool:
        """Can the agreement bar still be met by the decision window?

        True once the disagreements already seen exceed what
        ``min_agreement`` permits over ``decide_after`` sessions — the
        signal for an immediate rollback instead of waiting out the
        window.
        """
        config = self.config
        disagreed = self.report.sessions_scored - self.report.sessions_agreed
        allowed = (1.0 - config.min_agreement) * config.decide_after
        return disagreed > allowed + 1e-12

    def window_full(self) -> bool:
        return self.report.sessions_scored >= self.config.decide_after


__all__ = ["CanaryConfig", "CanaryReport", "CanaryState"]
