"""Fault injection for the serving fabric — re-export alias.

The deterministic fault-injection machinery was generalized into
:mod:`repro.utils.faults` so training workers and sweep cells can inject
seeded crash/stall/delay without importing the serving fabric.  This
module keeps the original import path working; the classes are the same
objects (``fabric.faults.FaultConfig is utils.faults.FaultConfig``).
"""

from __future__ import annotations

from repro.utils.faults import CRASH_EXIT_CODE, FaultConfig, FaultInjector

__all__ = ["FaultConfig", "FaultInjector", "CRASH_EXIT_CODE"]
