"""Compiled model plans and batched streaming inference.

The executable backend of the unified compiler: :func:`compile_model`
walks a trained module tree once into the shared layer-graph IR
(:mod:`repro.compiler.ir`), runs the compiler's pass pipeline, and
:func:`lower_graph` freezes the decided graph into a :class:`ModelPlan`
(packed — optionally sparse and/or quantized — weights plus preallocated
work buffers); :mod:`repro.engine.serving` drives padded micro-batches
from an utterance stream through that plan.  Tuned plans serialize with
:func:`save_plan` and reload bit-identically with :func:`load_plan`.

Quickstart::

    from repro import engine

    plan = engine.compile_model(model, scheme="int8")
    logits = plan.forward_batch(features, lengths)      # (T, B, C)
    hyps, stats = engine.serve_stream(plan, utterance_features)

    # online, chunk at a time, state carried between chunks:
    session = engine.StreamingSession(plan, min_duration=2)
    phones = [p for chunk in chunks for p in session.feed(chunk)]
    phones += session.finish()

    # deployment artifact: save → load → bit-identical logits
    engine.save_plan("model.plan.npz", plan)
    plan = engine.load_plan("model.plan.npz")

    # supervised multi-process serving with crash recovery
    with engine.ServingFabric("model.plan.npz") as fabric:
        sid = fabric.open()
        fabric.feed(sid, chunk)
        phones = fabric.poll(sid) + fabric.finish(sid)

    # versioned deployments: publish → serve → canary → promote/rollback
    registry = engine.PlanRegistry("registry/")
    registry.publish("am", plan)
    with engine.ServingFabric.from_registry(registry, "am") as fabric:
        fabric.start_canary("v2", engine.CanaryConfig(fraction=0.25))

See ``docs/engine.md``, ``docs/serving.md``, ``docs/compiler.md``, and
``docs/registry.md`` for the design.
"""

from repro.engine.artifact import load_plan, save_plan
from repro.engine.fabric import (
    CanaryConfig,
    CanaryReport,
    FabricConfig,
    FaultConfig,
    FleetStats,
    ServingFabric,
    SessionJournal,
    WorkerStats,
)
from repro.engine.registry import PlanRegistry, RegistryEntry
from repro.engine.plan import (
    EngineConfig,
    GRULayerPlan,
    LSTMLayerPlan,
    ModelPlan,
    OutputPlan,
    PlanState,
    compile_model,
    compile_rnn,
    lower_graph,
)
from repro.engine.serving import (
    MicroBatcher,
    ServingConfig,
    ServingStats,
    serve_stream,
)
from repro.engine.streaming import (
    StreamConfig,
    StreamScheduler,
    StreamStats,
    StreamingSession,
)

__all__ = [
    "EngineConfig",
    "ModelPlan",
    "PlanState",
    "GRULayerPlan",
    "LSTMLayerPlan",
    "OutputPlan",
    "compile_model",
    "compile_rnn",
    "lower_graph",
    "save_plan",
    "load_plan",
    "PlanRegistry",
    "RegistryEntry",
    "MicroBatcher",
    "ServingConfig",
    "ServingStats",
    "serve_stream",
    "StreamConfig",
    "StreamScheduler",
    "StreamStats",
    "StreamingSession",
    "ServingFabric",
    "FabricConfig",
    "FleetStats",
    "WorkerStats",
    "CanaryConfig",
    "CanaryReport",
    "FaultConfig",
    "SessionJournal",
]
