"""Compiled model plans and batched streaming inference.

The run-time counterpart of :mod:`repro.compiler`'s cost-model pipeline:
:func:`compile_model` walks a trained module tree once and freezes it
into a :class:`ModelPlan` (packed — optionally sparse and/or quantized —
weights plus preallocated work buffers), and :mod:`repro.engine.serving`
drives padded micro-batches from an utterance stream through that plan.

Quickstart::

    from repro import engine

    plan = engine.compile_model(model, scheme="int8")
    logits = plan.forward_batch(features, lengths)      # (T, B, C)
    hyps, stats = engine.serve_stream(plan, utterance_features)

    # online, chunk at a time, state carried between chunks:
    session = engine.StreamingSession(plan, min_duration=2)
    phones = [p for chunk in chunks for p in session.feed(chunk)]
    phones += session.finish()

See ``docs/engine.md`` and ``docs/serving.md`` for the design.
"""

from repro.engine.plan import (
    EngineConfig,
    GRULayerPlan,
    LSTMLayerPlan,
    ModelPlan,
    OutputPlan,
    PlanState,
    compile_model,
    compile_rnn,
)
from repro.engine.serving import (
    MicroBatcher,
    ServingConfig,
    ServingStats,
    serve_stream,
)
from repro.engine.streaming import (
    StreamConfig,
    StreamScheduler,
    StreamStats,
    StreamingSession,
)

__all__ = [
    "EngineConfig",
    "ModelPlan",
    "PlanState",
    "GRULayerPlan",
    "LSTMLayerPlan",
    "OutputPlan",
    "compile_model",
    "compile_rnn",
    "MicroBatcher",
    "ServingConfig",
    "ServingStats",
    "serve_stream",
    "StreamConfig",
    "StreamScheduler",
    "StreamStats",
    "StreamingSession",
]
