"""Compiled model plans and batched streaming inference.

The run-time counterpart of :mod:`repro.compiler`'s cost-model pipeline:
:func:`compile_model` walks a trained module tree once and freezes it
into a :class:`ModelPlan` (packed — optionally sparse and/or quantized —
weights plus preallocated work buffers), and :mod:`repro.engine.serving`
drives padded micro-batches from an utterance stream through that plan.

Quickstart::

    from repro import engine

    plan = engine.compile_model(model, scheme="int8")
    logits = plan.forward_batch(features, lengths)      # (T, B, C)
    hyps, stats = engine.serve_stream(plan, utterance_features)

See ``docs/engine.md`` for the design.
"""

from repro.engine.plan import (
    EngineConfig,
    GRULayerPlan,
    LSTMLayerPlan,
    ModelPlan,
    OutputPlan,
    compile_model,
    compile_rnn,
)
from repro.engine.serving import (
    MicroBatcher,
    ServingConfig,
    ServingStats,
    serve_stream,
)

__all__ = [
    "EngineConfig",
    "ModelPlan",
    "GRULayerPlan",
    "LSTMLayerPlan",
    "OutputPlan",
    "compile_model",
    "compile_rnn",
    "MicroBatcher",
    "ServingConfig",
    "ServingStats",
    "serve_stream",
]
