"""Lower the shared layer graph into a packed execution plan.

The paper's thesis is that RNN inference gets fast when all indexing,
layout, and format decisions move to compile time.  :func:`compile_model`
applies that to this library's own execution — through the unified
compiler: the module tree is walked **once** into the shared layer-graph
IR (:func:`repro.compiler.pipeline.build_layer_graph`), the compiler's
pass pipeline (:mod:`repro.compiler.passes`) decides every per-layer
sparse format and kernel, and :func:`lower_graph` executes those
decisions, freezing everything the forward pass needs into flat arrays —
gate matrices pre-transposed, biases pre-folded the way the fused kernels
fold them, sparse weights pre-packed into :class:`~repro.sparse.csr.CSRMatrix`
/ :class:`~repro.sparse.bspc.BSPCMatrix` objects with their kernel plans
built eagerly, and (optionally) weights quantized to fp16 storage or int8
codes.  No format/scheme decision is made in this module; it executes
what the graph says.  The resulting :class:`ModelPlan` runs whole padded
batches on raw ndarrays: no ``Tensor`` tape, no per-layer ``Module``
dispatch, work buffers reused across calls; its ``graph`` attribute
retains the lowered IR for artifact serialization
(:mod:`repro.engine.artifact`) and a tuned ``backend`` pins the kernel
registry backend its kernels dispatch to.

Numerics by scheme:

* ``scheme=None`` (packing only) — float64 throughout, and **bit-exact**
  with the eval-mode ``model.forward`` fused-kernel path: the plan
  replays the same numpy ops in the same order.
* ``scheme="fp16"`` — weights and biases are rounded through IEEE half
  precision and stored as float16 arrays; compute runs in float32 (half
  the memory traffic of the float64 path, and what "16-bit storage,
  wider accumulate" mobile kernels do).
* ``scheme="int8"`` — input-side projections run through the registry's
  ``linear_int8_rowwise`` / ``*_spmm_int8`` kernels (integer
  accumulation, one activation scale *per frame*, one dequant); the
  small per-timestep recurrent GEMMs use dequantized int8 weights in
  float64, where an integer pipeline cannot pay for its per-step
  quantization overhead.  Per-frame activation scales plus order-exact
  integer accumulation make int8 plans **bitwise chunk-exact**: a frame's
  logits do not depend on which other frames shared the call.
* ``scheme="mixed"`` — the scheme is decided *per slot* by the pass
  pipeline: int8 input/output projections (batched, chunk-exact) with
  full-precision float recurrences (where per-step quantization error
  would compound).  Every slot executes exactly as it would under its
  own uniform scheme, so mixed plans inherit the int8 slots' bitwise
  chunk-exactness while keeping float recurrent dynamics.

Schemes are carried per :class:`~repro.compiler.ir.WeightSlot`; the
graph-level scheme is only the *request* the pass pipeline resolves, and
lowering reads the slot decisions (falling back to the graph scheme for
artifacts that predate per-slot schemes).

Streaming: :meth:`ModelPlan.run_chunk` threads explicit hidden (and
cell) state through the same layer code, so a session can feed a chunk
at a time — see :mod:`repro.engine.streaming` and ``docs/serving.md``.
"""

from __future__ import annotations

import math
import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.compiler.ir import (
    GraphNode,
    GraphOptions,
    LayerGraph,
    TileConfig,
    WeightSlot,
    resolve_slot_scheme,
)
from repro.compiler.passes import run_passes, slot_grid
from repro.compiler.pipeline import build_layer_graph, rnn_graph_from_weights
from repro.errors import ConfigError, ShapeError
from repro.kernels._math import sigmoid as _sigmoid
from repro.kernels.quantized import int8_bspc_plan, int8_codes, int8_csr_plan
from repro.nn.quantize import quantize_fp16
from repro.sparse.blocks import BlockGrid
from repro.sparse.bspc import BSPCMatrix
from repro.sparse.csr import CSRMatrix

SCHEMES = (None, "fp16", "int8", "mixed")
SPARSE_FORMATS = (None, "auto", "csr", "bspc")


def _slot_scheme(slot: WeightSlot, graph_scheme: Optional[str]) -> Optional[str]:
    """A slot's *compute* scheme: ``None`` (float64), ``"fp16"``, ``"int8"``.

    Reads the pass-decided per-slot scheme; slots from artifacts that
    predate per-slot schemes carry ``None`` and fall back to the graph
    scheme (resolved exactly as the pass pipeline would).
    """
    resolved = slot.scheme or resolve_slot_scheme(graph_scheme, slot.op)
    return None if resolved == "float" else resolved


def _fp16_pack(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """fp16 storage array + contiguous float32 transpose for compute."""
    storage = np.clip(weight, -65504.0, 65504.0).astype(np.float16)
    return storage, np.ascontiguousarray(storage.astype(np.float32).T)


def _int8_pack(weight: np.ndarray) -> Tuple[np.ndarray, float, np.ndarray]:
    """int8 codes + scale + the pre-cast float32 copy ``linear_int8`` wants."""
    codes, scale = int8_codes(weight)
    return codes, scale, codes.astype(np.float32)


@dataclass(frozen=True)
class EngineConfig:
    """Compile-time knobs for :func:`compile_model`.

    ``sparse_format`` selects how input-side weight matrices are packed:
    ``None`` keeps every weight dense (required for the bit-exact
    packing-only guarantee), ``"csr"``/``"bspc"`` force a format, and
    ``"auto"`` packs any matrix whose density is at or below
    ``sparsity_threshold`` — as BSPC when the panels stay mostly full
    (``fill >= 0.5``, i.e. the pattern is BSP-shaped), as CSR otherwise.
    """

    sparse_format: Optional[str] = None
    sparsity_threshold: float = 0.5
    num_row_strips: int = 8
    num_col_blocks: int = 8

    def __post_init__(self) -> None:
        if self.sparse_format not in SPARSE_FORMATS:
            raise ConfigError(
                f"sparse_format must be one of {SPARSE_FORMATS}, "
                f"got {self.sparse_format!r}"
            )
        if not 0.0 < self.sparsity_threshold <= 1.0:
            raise ConfigError(
                f"sparsity_threshold must be in (0, 1], got {self.sparsity_threshold}"
            )
        if self.num_row_strips < 1 or self.num_col_blocks < 1:
            raise ConfigError("num_row_strips and num_col_blocks must be >= 1")

    def graph_options(self) -> GraphOptions:
        """The equivalent graph-level options for the shared pass
        pipeline (format decisions live there, not in this module)."""
        return GraphOptions(
            sparse_format=self.sparse_format,
            sparsity_threshold=self.sparsity_threshold,
            num_row_strips=self.num_row_strips,
            num_col_blocks=self.num_col_blocks,
        )


class _Workspace:
    """Grow-only scratch buffers, keyed by name and dtype.

    ``take`` hands out a reshaped view of a flat buffer that is enlarged
    only when a bigger batch arrives — repeated ``forward_batch`` calls
    at steady shapes allocate nothing.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def take(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        size = int(math.prod(shape))
        dtype = np.dtype(dtype)
        buffer = self._buffers.get((key, dtype))
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[(key, dtype)] = buffer
        return buffer[:size].reshape(shape)


# ---------------------------------------------------------------------------
# Weight packings
# ---------------------------------------------------------------------------
class _DenseWeight:
    """A weight kept dense; the scheme decides storage and compute dtype."""

    def __init__(self, weight: np.ndarray, scheme: Optional[str]) -> None:
        self.scheme = scheme
        self.shape = weight.shape
        if scheme is None:
            # Kept exactly as the module stores it; projections use the
            # same ``x @ weight.T`` expression as the fused kernels, so
            # packing-only plans are bit-exact with the eager path.
            self.weight = weight.copy()
        elif scheme == "fp16":
            self.storage, self.weight_t = _fp16_pack(weight)
        else:  # int8
            self.codes, self.scale, self.codes_f = _int8_pack(weight)

    def project(self, x2d: np.ndarray, ws: _Workspace, key: str) -> np.ndarray:
        """``x2d (N, K) → (N, M)`` in the scheme's compute dtype."""
        if self.scheme is None:
            out = ws.take(key, (x2d.shape[0], self.shape[0]))
            return np.matmul(x2d, self.weight.T, out=out)
        if self.scheme == "fp16":
            out = ws.take(key, (x2d.shape[0], self.shape[0]), np.float32)
            return np.matmul(x2d, self.weight_t, out=out)
        return kernels.linear_int8_rowwise(self.codes_f, self.scale, x2d)

    def nbytes(self) -> int:
        count = int(np.prod(self.shape))
        return count * {None: 8, "fp16": 2, "int8": 1}[self.scheme]


class _SparseWeight:
    """A weight packed as CSR/BSPC with its kernel plans built eagerly."""

    def __init__(
        self,
        weight: np.ndarray,
        fmt: str,
        scheme: Optional[str],
        grid: Optional[BlockGrid] = None,
        prebuilt: Optional[BSPCMatrix] = None,
        tile: Optional[TileConfig] = None,
    ) -> None:
        self.scheme = scheme
        self.shape = weight.shape
        if scheme == "fp16":
            # fp16 sparse: values rounded through half precision, float
            # sparse kernels do the compute (they are float64-only).
            weight = quantize_fp16(weight)
            prebuilt = None  # built from unrounded values; cannot reuse
        if fmt == "bspc":
            self.matrix = (
                prebuilt
                if prebuilt is not None
                else BSPCMatrix.from_dense(weight, grid)
            )
            if tile is not None and tile.row_block:
                # The tuner's host tile knob: install the row-blocked
                # float plan first so the int8 plan derives from it.
                kernels.pack_bspc_plan(self.matrix, tile.row_block)
            plan_builder = int8_bspc_plan if scheme == "int8" else kernels.bspc_plan
        else:
            self.matrix = CSRMatrix.from_dense(weight)
            plan_builder = int8_csr_plan if scheme == "int8" else kernels.csr_plan
        plan_builder(self.matrix)  # build the cached execution plan now

    def project(self, x2d: np.ndarray, ws: _Workspace, key: str) -> np.ndarray:
        xt = np.ascontiguousarray(x2d.T)
        if self.scheme == "int8":
            out = kernels.spmm_int8(self.matrix, xt).T
        else:
            out = kernels.spmm(self.matrix, xt).T
        if self.scheme == "fp16":
            return out.astype(np.float32)
        return out

    def nbytes(self) -> int:
        value_bytes = {None: 8, "fp16": 2, "int8": 1}[self.scheme]
        return self.matrix.nbytes(value_bytes=value_bytes, index_bytes=4)


def _pack_weight(slot, scheme):
    """Pack one input-side weight slot as its pass-decided format.

    All format *decisions* happen in the compiler's format-selection pass
    (:func:`repro.compiler.passes.select_formats_pass`); this function
    only executes them.
    """
    if slot.format in (None, "dense"):
        return _DenseWeight(slot.array, scheme)
    return _SparseWeight(
        slot.array,
        slot.format,
        scheme,
        grid=slot_grid(slot),
        prebuilt=slot.prebuilt,
        tile=slot.tile,
    )


def _round_bias(bias: np.ndarray, scheme: Optional[str], dtype) -> np.ndarray:
    """Biases follow the scheme's value grid (matching ``quantize_model``)."""
    if scheme == "fp16":
        return quantize_fp16(bias).astype(dtype)
    if scheme == "int8":
        codes, scale = int8_codes(bias)
        return (codes.astype(np.float64) * scale).astype(dtype)
    return bias.copy()


# ---------------------------------------------------------------------------
# Layer plans
# ---------------------------------------------------------------------------
class GRULayerPlan:
    """One GRU layer frozen for batched inference.

    ``forward`` replays the numpy ``gru_sequence`` kernel's math; for the
    packing-only scheme it is op-for-op identical (bit-exact), with the
    recurrent ``w_hh.T`` contiguation hoisted from per-call to compile
    time.
    """

    def __init__(self, node: GraphNode, scheme: Optional[str]) -> None:
        ih_slot, hh_slot = node.weights["ih"], node.weights["hh"]
        bias_ih = node.params["bias_ih"]
        bias_hh = node.params["bias_hh"]
        self.scheme = scheme
        ih_scheme = _slot_scheme(ih_slot, scheme)
        hh_scheme = _slot_scheme(hh_slot, scheme)
        self.slot_schemes = (ih_scheme, hh_scheme)
        self.slot_config = (
            (ih_scheme or "float", ih_slot.format or "dense"),
            (hh_scheme or "float", hh_slot.format or "dense"),
        )
        self.hidden_size = hh_slot.shape[1]
        self.input_size = ih_slot.shape[1]
        self.dtype = (
            np.float32
            if ih_scheme == "fp16" and hh_scheme == "fp16"
            else np.float64
        )
        self.input_proj = _pack_weight(ih_slot, ih_scheme)
        self.recurrent = _pack_recurrent(hh_slot, hh_scheme)
        h = self.hidden_size
        self.fold_bias = not (ih_scheme is None and hh_scheme is None)
        if not self.fold_bias:
            self.bias_ih = bias_ih.copy()
            self.bias_hh_zr = bias_hh[: 2 * h].copy()
            self.bias_hh_h = bias_hh[2 * h :].copy()
        else:
            # Folded once at compile time; the kernel folds per call.
            # Each bias follows its own slot's value grid (exact copy for
            # a float slot in a mixed plan).
            folded = _round_bias(bias_ih, ih_scheme, np.float64)
            rounded_hh = _round_bias(bias_hh, hh_scheme, np.float64)
            folded[: 2 * h] += rounded_hh[: 2 * h]
            self.bias_folded = folded.astype(self.dtype)
            self.bias_hh_h = rounded_hh[2 * h :].astype(self.dtype)

    def zero_state(self, batch: int) -> Tuple[np.ndarray, ...]:
        return (np.zeros((batch, self.hidden_size), dtype=self.dtype),)

    def forward(
        self,
        x: np.ndarray,
        ws: _Workspace,
        index: int,
        state: Optional[Tuple[np.ndarray, ...]] = None,
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
        seq_len, batch, _ = x.shape
        h = self.hidden_size
        flat = x.reshape(seq_len * batch, self.input_size)
        gates_x = self.input_proj.project(flat, ws, f"gx{index}")
        if not self.fold_bias:
            gates_x = gates_x + self.bias_ih
        else:
            gates_x = gates_x + self.bias_folded
        gates_x = gates_x.reshape(seq_len, batch, 3 * h)
        if not self.fold_bias:
            gates_x[:, :, : 2 * h] += self.bias_hh_zr
        gx_zr = gates_x[:, :, : 2 * h]
        gx_h = gates_x[:, :, 2 * h :]
        out = ws.take(f"out{index}", (seq_len, batch, h), self.dtype)
        hidden = self.zero_state(batch)[0] if state is None else state[0]
        gh_key = f"gh{index}"
        for t in range(seq_len):
            gh = self.recurrent.step(hidden, ws, gh_key)
            zr = _sigmoid(gx_zr[t] + gh[:, : 2 * h])
            z = zr[:, :h]
            r = zr[:, h:]
            h_tilde = np.tanh(gx_h[t] + r * (gh[:, 2 * h :] + self.bias_hh_h))
            hidden = (1.0 - z) * hidden + z * h_tilde
            out[t] = hidden
        if seq_len == 0:
            hidden = hidden.copy()  # never alias the caller's carry state
        return out, (hidden,)

    def nbytes(self) -> int:
        quantized = any(s is not None for s in self.slot_schemes)
        bias_bytes = 2 * 3 * self.hidden_size * (2 if quantized else 8)
        return self.input_proj.nbytes() + self.recurrent.nbytes() + bias_bytes


class LSTMLayerPlan:
    """One LSTM layer frozen for batched inference (gate order i,f,g,o)."""

    def __init__(self, node: GraphNode, scheme: Optional[str]) -> None:
        ih_slot, hh_slot = node.weights["ih"], node.weights["hh"]
        bias = node.params["bias"]
        self.scheme = scheme
        ih_scheme = _slot_scheme(ih_slot, scheme)
        hh_scheme = _slot_scheme(hh_slot, scheme)
        self.slot_schemes = (ih_scheme, hh_scheme)
        self.slot_config = (
            (ih_scheme or "float", ih_slot.format or "dense"),
            (hh_scheme or "float", hh_slot.format or "dense"),
        )
        self.hidden_size = hh_slot.shape[1]
        self.input_size = ih_slot.shape[1]
        self.dtype = (
            np.float32
            if ih_scheme == "fp16" and hh_scheme == "fp16"
            else np.float64
        )
        self.input_proj = _pack_weight(ih_slot, ih_scheme)
        self.recurrent = _pack_recurrent(hh_slot, hh_scheme)
        # The single LSTM bias adds into the input-side gates; it follows
        # the ih slot's value grid (exact copy when both slots are float).
        self.bias = (
            bias.copy()
            if ih_scheme is None and hh_scheme is None
            else _round_bias(bias, ih_scheme, self.dtype)
        )

    def zero_state(self, batch: int) -> Tuple[np.ndarray, ...]:
        zeros = np.zeros((batch, self.hidden_size), dtype=self.dtype)
        return (zeros, zeros.copy())

    def forward(
        self,
        x: np.ndarray,
        ws: _Workspace,
        index: int,
        state: Optional[Tuple[np.ndarray, ...]] = None,
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
        seq_len, batch, _ = x.shape
        h = self.hidden_size
        flat = x.reshape(seq_len * batch, self.input_size)
        gates_x = self.input_proj.project(flat, ws, f"gx{index}")
        gates_x = (gates_x + self.bias).reshape(seq_len, batch, 4 * h)
        out = ws.take(f"out{index}", (seq_len, batch, h), self.dtype)
        hidden, cell = self.zero_state(batch) if state is None else state
        gh_key = f"gh{index}"
        for t in range(seq_len):
            gates = gates_x[t] + self.recurrent.step(hidden, ws, gh_key)
            input_forget = _sigmoid(gates[:, : 2 * h])
            i = input_forget[:, :h]
            f = input_forget[:, h:]
            g = np.tanh(gates[:, 2 * h : 3 * h])
            o = _sigmoid(gates[:, 3 * h :])
            cell = f * cell + i * g
            hidden = o * np.tanh(cell)
            out[t] = hidden
        if seq_len == 0:
            hidden, cell = hidden.copy(), cell.copy()
        return out, (hidden, cell)

    def nbytes(self) -> int:
        quantized = any(s is not None for s in self.slot_schemes)
        bias_bytes = 4 * self.hidden_size * (2 if quantized else 8)
        return self.input_proj.nbytes() + self.recurrent.nbytes() + bias_bytes


class _DenseRecurrent:
    """Recurrent weight as a pre-transposed contiguous matrix.

    For ``scheme=None`` this is exactly the ``np.ascontiguousarray(w_hh.T)``
    the fused kernel builds per call, hoisted to compile time (bit-exact).
    Int8 recurrent weights are dequantized once — the per-step ``(B, H)``
    GEMMs are too small for integer pipelines to beat float BLAS.
    """

    def __init__(self, weight_hh: np.ndarray, scheme: Optional[str]) -> None:
        self.scheme = scheme
        self.shape = weight_hh.shape
        if scheme is None:
            self.weight_t = np.ascontiguousarray(weight_hh.T)
        elif scheme == "fp16":
            self.storage, self.weight_t = _fp16_pack(weight_hh)
        else:
            self.codes, self.scale = int8_codes(weight_hh)
            self.weight_t = np.ascontiguousarray(
                (self.codes.astype(np.float64) * self.scale).T
            )

    def step(self, state: np.ndarray, ws: _Workspace, key: str) -> np.ndarray:
        out = ws.take(key, (state.shape[0], self.shape[0]), state.dtype)
        return np.matmul(state, self.weight_t, out=out)

    def nbytes(self) -> int:
        count = int(np.prod(self.shape))
        return count * {None: 8, "fp16": 2, "int8": 1}[self.scheme]


class _SparseRecurrent:
    """Recurrent weight packed sparse; each step is one spmm call."""

    def __init__(self, packed: _SparseWeight) -> None:
        self.packed = packed

    def step(self, state: np.ndarray, ws: _Workspace, key: str) -> np.ndarray:
        return self.packed.project(
            state.astype(np.float64, copy=False), ws, key
        ).astype(state.dtype, copy=False)

    def nbytes(self) -> int:
        return self.packed.nbytes()


def _pack_recurrent(slot, scheme):
    """Pack a recurrent weight slot as its pass-decided format."""
    if slot.format in (None, "dense"):
        return _DenseRecurrent(slot.array, scheme)
    return _SparseRecurrent(
        _SparseWeight(
            slot.array,
            slot.format,
            scheme,
            grid=slot_grid(slot),
            prebuilt=slot.prebuilt,
            tile=slot.tile,
        )
    )


class OutputPlan:
    """The final linear projection over phone classes."""

    def __init__(
        self, weight: np.ndarray, bias: Optional[np.ndarray], scheme: Optional[str]
    ) -> None:
        self.scheme = scheme
        self.num_classes = weight.shape[0]
        if scheme is None:
            self.weight = weight.copy()
        elif scheme == "fp16":
            self.storage, self.weight_t = _fp16_pack(weight)
        else:
            self.codes, self.scale, self.codes_f = _int8_pack(weight)
        dtype = np.float32 if scheme == "fp16" else np.float64
        self.bias = None if bias is None else _round_bias(bias, scheme, dtype)

    def project(self, hidden: np.ndarray) -> np.ndarray:
        """Hidden states ``(T, B, H)`` → logits ``(T, B, C)`` (fresh array)."""
        seq_len, batch, h = hidden.shape
        flat = hidden.reshape(seq_len * batch, h)
        if self.scheme is None:
            logits = flat @ self.weight.T
        elif self.scheme == "fp16":
            logits = flat @ self.weight_t
        else:
            logits = kernels.linear_int8_rowwise(
                self.codes_f, self.scale, flat.astype(np.float64, copy=False)
            )
        if self.bias is not None:
            logits = logits + self.bias
        return logits.reshape(seq_len, batch, self.num_classes)

    def nbytes(self) -> int:
        value_bytes = {None: 8, "fp16": 2, "int8": 1}[self.scheme]
        weight_count = self.num_classes * (
            self.weight.shape[1] if self.scheme is None
            else (self.storage.shape[1] if self.scheme == "fp16" else self.codes.shape[1])
        )
        bias_bytes = 0 if self.bias is None else self.num_classes * (
            2 if self.scheme else 8
        )
        return weight_count * value_bytes + bias_bytes


# ---------------------------------------------------------------------------
# Carry state for streaming execution
# ---------------------------------------------------------------------------
class PlanState:
    """The recurrent carry of a :class:`ModelPlan` between chunks.

    One tuple of ``(B, H)`` arrays per layer — ``(h,)`` for GRU layers,
    ``(h, c)`` for LSTM layers.  States are value objects: the plan never
    mutates a state it was handed, and the state it returns never aliases
    its internal work buffers, so a state can be held across arbitrary
    other plan calls.  ``stack``/``split`` convert between per-session
    states and one batched state — how the stream scheduler fuses
    concurrent sessions into a single ``run_chunk`` call.
    """

    def __init__(self, layer_states: List[Tuple[np.ndarray, ...]]) -> None:
        self.layer_states = layer_states

    @property
    def batch_size(self) -> int:
        return int(self.layer_states[0][0].shape[0])

    @staticmethod
    def stack(states: List["PlanState"]) -> "PlanState":
        """Concatenate per-session states along the batch axis."""
        if not states:
            raise ShapeError("cannot stack an empty list of states")
        num_layers = len(states[0].layer_states)
        stacked = []
        for layer in range(num_layers):
            parts = [s.layer_states[layer] for s in states]
            stacked.append(
                tuple(
                    np.concatenate([p[i] for p in parts], axis=0)
                    for i in range(len(parts[0]))
                )
            )
        return PlanState(stacked)

    def split(self) -> List["PlanState"]:
        """One single-row state per batch entry (copies, no aliasing)."""
        return [
            PlanState(
                [
                    tuple(component[b : b + 1].copy() for component in layer)
                    for layer in self.layer_states
                ]
            )
            for b in range(self.batch_size)
        ]


# ---------------------------------------------------------------------------
# The compiled model
# ---------------------------------------------------------------------------
class ModelPlan:
    """A model compiled to flat arrays; run with :meth:`forward_batch`.

    Internal work buffers are reused across calls, so a plan is cheap to
    invoke repeatedly at steady batch shapes; the returned logits are
    always freshly allocated.  Plans snapshot the weights at compile
    time — recompile after further training or pruning.
    """

    def __init__(
        self,
        layers: List,
        output: Optional[OutputPlan],
        scheme: Optional[str],
        cell_type: str,
        config: EngineConfig,
        backend: Optional[str] = None,
        graph: Optional[LayerGraph] = None,
    ) -> None:
        self.layers = layers
        self.output = output
        self.scheme = scheme
        self.cell_type = cell_type
        self.config = config
        self.backend = backend
        self.graph = graph
        self.input_dim = layers[0].input_size
        self.hidden_size = layers[0].hidden_size
        self._workspace = _Workspace()

    def _backend_scope(self):
        """Kernel-registry scope for this plan's tuned backend choice.

        A plan tuned on another host may name a backend this process
        could not register (an artifact tuned for ``"compiled"`` loaded
        where no C compiler exists).  Backends are bit-compatible (int8)
        or tolerance-compatible (float) by the equivalence suite, so
        that is a performance regression, not a correctness problem:
        warn once and run on the session default instead of crashing.
        """
        if not self.backend:
            return nullcontext()
        if self.backend not in kernels.backends():
            if not getattr(self, "_warned_missing_backend", False):
                self._warned_missing_backend = True
                warnings.warn(
                    f"plan was tuned for kernel backend {self.backend!r}, "
                    f"which is not available in this process "
                    f"(have: {', '.join(kernels.backends())}); "
                    "falling back to the default backend",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return nullcontext()
        return kernels.use_backend(self.backend)

    def forward_batch(
        self, features: np.ndarray, lengths: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Padded features ``(T, B, D)`` → logits ``(T, B, C)``.

        ``lengths`` is validated when given but the full padded batch is
        always computed — callers slice per-utterance frames out (the
        serving layer and :func:`repro.speech.decoder.decode_batch` do).
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 3:
            raise ShapeError(
                f"forward_batch expects (T, B, D) features, got {features.shape}"
            )
        if features.shape[-1] != self.input_dim:
            raise ShapeError(
                f"plan compiled for input dim {self.input_dim}, "
                f"got {features.shape}"
            )
        if lengths is not None:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (features.shape[1],):
                raise ShapeError(
                    f"lengths must be ({features.shape[1]},), got {lengths.shape}"
                )
            if lengths.size and (
                lengths.min() < 0 or lengths.max() > features.shape[0]
            ):
                raise ShapeError("lengths must lie in [0, T]")
        with self._backend_scope():
            x, _ = self._run_layers(features, None)
            return self._project_out(x)

    def _run_layers(
        self,
        features: np.ndarray,
        layer_states: Optional[List[Tuple[np.ndarray, ...]]],
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, ...]]]:
        x = features
        if self.scheme == "fp16":
            x = x.astype(np.float32)
        new_states: List[Tuple[np.ndarray, ...]] = []
        for index, layer in enumerate(self.layers):
            carry = None if layer_states is None else layer_states[index]
            x, carry = layer.forward(x, self._workspace, index, carry)
            new_states.append(carry)
        return x, new_states

    def _project_out(self, x: np.ndarray) -> np.ndarray:
        if self.output is not None:
            x = self.output.project(x)
        if x.dtype != np.float64:
            x = x.astype(np.float64)
        elif self.output is None:
            x = x.copy()  # never hand out an internal work buffer
        return x

    def init_state(self, batch: int) -> PlanState:
        """The all-zero carry state for ``batch`` concurrent streams."""
        if batch < 0:
            raise ShapeError(f"batch must be >= 0, got {batch}")
        return PlanState([layer.zero_state(batch) for layer in self.layers])

    def signature(self) -> Tuple:
        """The compatibility fingerprint that governs hot-swap safety.

        Two plans with equal signatures accept each other's
        :class:`PlanState` *numerically*: per-layer shapes and component
        counts match, **and** every weight slot was lowered under the
        same (scheme, format) decision.  With per-layer scheme mixing a
        shape-only fingerprint is not enough — a mixed-scheme candidate
        would accept an incumbent's state whose trajectory was produced
        on a different quantization grid, silently degrading every
        carried session.  The tuned kernel *backend* is deliberately
        excluded (backends are bit-compatible by the equivalence suite);
        the hot-swap paths (:meth:`StreamScheduler.swap_plan
        <repro.engine.streaming.StreamScheduler.swap_plan>`,
        ``fabric.swap``/``start_canary``) reject signature mismatches
        with a typed ``SwapError``.
        """
        layers = tuple(
            (
                layer.input_size,
                layer.hidden_size,
                len(layer.zero_state(0)),
                getattr(layer, "slot_config", None),
            )
            for layer in self.layers
        )
        classes = (
            None
            if self.output is None
            else (self.output.num_classes, self.output.scheme or "float")
        )
        return (self.cell_type, layers, classes)

    def adapt_state(self, state: PlanState) -> PlanState:
        """Re-home a carry state produced by a same-architecture plan.

        Returns a fresh :class:`PlanState` whose components are cast to
        *this* plan's per-layer compute dtypes (a scheme change moves
        states between float64 and float32); raises :class:`ShapeError`
        when the state's layer count, component count, or hidden sizes
        do not match this plan's architecture.
        """
        if len(state.layer_states) != len(self.layers):
            raise ShapeError(
                f"state has {len(state.layer_states)} layer states, "
                f"plan has {len(self.layers)} layers"
            )
        adapted: List[Tuple[np.ndarray, ...]] = []
        for index, (layer, components) in enumerate(
            zip(self.layers, state.layer_states)
        ):
            template = layer.zero_state(0)
            if len(components) != len(template):
                raise ShapeError(
                    f"layer {index} state has {len(components)} components, "
                    f"expected {len(template)}"
                )
            row = []
            for component, blank in zip(components, template):
                component = np.asarray(component)
                if component.ndim != 2 or component.shape[1] != layer.hidden_size:
                    raise ShapeError(
                        f"layer {index} state component has shape "
                        f"{component.shape}, expected (B, {layer.hidden_size})"
                    )
                row.append(component.astype(blank.dtype, copy=True))
            adapted.append(tuple(row))
        return PlanState(adapted)

    def run_chunk(
        self, features: np.ndarray, state: Optional[PlanState] = None
    ) -> Tuple[np.ndarray, PlanState]:
        """One streaming chunk: ``(T, B, D)`` + carry → ``(logits, carry')``.

        Feeding an utterance through ``run_chunk`` in *any* chunk split
        replays the per-timestep recurrence of :meth:`forward_batch`
        exactly; the only ops whose shape depends on the split are the
        hoisted input/output projections, whose BLAS reduction order may
        differ — so float/fp16 logits agree to reduction-order rounding
        (~1e-12 relative for float64) and int8 logits are **bit-exact**
        (per-frame activation scales, order-exact integer accumulation).
        Decoded phone sequences are identical in either case; see
        ``docs/serving.md``.

        ``state=None`` starts a fresh stream (all-zero state, identical
        to :meth:`forward_batch` on the same frames).  The returned carry
        never aliases plan work buffers, and zero-length chunks are legal
        (logits ``(0, B, C)``, state passed through).
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 3:
            raise ShapeError(
                f"run_chunk expects (T, B, D) features, got {features.shape}"
            )
        if features.shape[-1] != self.input_dim:
            raise ShapeError(
                f"plan compiled for input dim {self.input_dim}, "
                f"got {features.shape}"
            )
        batch = features.shape[1]
        if state is None:
            state = self.init_state(batch)
        elif state.batch_size != batch:
            raise ShapeError(
                f"carry state holds batch {state.batch_size}, "
                f"chunk has batch {batch}"
            )
        with self._backend_scope():
            x, new_states = self._run_layers(features, state.layer_states)
            return self._project_out(x), PlanState(new_states)

    def forward_utterance(self, features: np.ndarray) -> np.ndarray:
        """Single utterance ``(T, D)`` → logits ``(T, C)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ShapeError(
                f"forward_utterance expects (T, D) features, got {features.shape}"
            )
        return self.forward_batch(features[:, None, :])[:, 0]

    def nbytes(self) -> int:
        """Modelled storage footprint of the packed weights."""
        total = sum(layer.nbytes() for layer in self.layers)
        if self.output is not None:
            total += self.output.nbytes()
        return total


def _validate_scheme(scheme: Optional[str]) -> None:
    if scheme not in SCHEMES:
        raise ConfigError(f"scheme must be one of {SCHEMES}, got {scheme!r}")


def _config_from_graph(graph: LayerGraph) -> EngineConfig:
    options = graph.options
    fmt = options.sparse_format
    return EngineConfig(
        sparse_format=None if fmt == "dense" else fmt,
        sparsity_threshold=options.sparsity_threshold,
        num_row_strips=options.num_row_strips,
        num_col_blocks=options.num_col_blocks,
    )


def lower_graph(
    graph: LayerGraph, config: Optional[EngineConfig] = None
) -> ModelPlan:
    """Lower a layer graph to an executable :class:`ModelPlan`.

    This is the execution engine's backend of the unified compiler: the
    graph's pass-decided per-slot formats, scheme, and kernel backend are
    executed verbatim.  Slots whose format is still undecided are sent
    through the shared pass pipeline first, so a freshly built frontend
    graph and a tuned/deserialized one lower through the same code.

    Lowering is deterministic: the same graph (same arrays, same
    annotations) always produces a plan with bit-identical outputs —
    the property the compiled-artifact round trip relies on.
    """
    _validate_scheme(graph.scheme)
    if graph.undecided():
        run_passes(graph)
    layers: List = []
    output = None
    for node in graph.nodes:
        if node.kind == "gru_cell":
            layers.append(GRULayerPlan(node, graph.scheme))
        elif node.kind == "lstm_cell":
            layers.append(LSTMLayerPlan(node, graph.scheme))
        elif node.kind == "output":
            out_slot = node.weights["w"]
            output = OutputPlan(
                out_slot.array,
                node.params.get("bias"),
                _slot_scheme(out_slot, graph.scheme),
            )
        else:
            raise ConfigError(
                f"cannot lower node kind {node.kind!r} to the engine"
            )
    if not layers:
        raise ConfigError("graph has no recurrent layers to lower")
    cell_type = graph.cell_type or "gru"
    return ModelPlan(
        layers,
        output,
        graph.scheme,
        cell_type,
        config or _config_from_graph(graph),
        backend=graph.backend,
        graph=graph,
    )


def compile_model(
    model,
    scheme: Optional[str] = None,
    config: EngineConfig = EngineConfig(),
) -> ModelPlan:
    """Compile a :class:`~repro.speech.model.GRUAcousticModel` (or a bare
    ``GRU``/``LSTM`` stack) into a :class:`ModelPlan`.

    The module tree is walked exactly once into the shared layer-graph IR
    (:func:`repro.compiler.pipeline.build_layer_graph`), the compiler's
    pass pipeline decides every format/kernel, and :func:`lower_graph`
    executes those decisions.  The graph holds copies of the weights, so
    later training does not silently change compiled results.
    """
    _validate_scheme(scheme)
    graph = build_layer_graph(model, scheme=scheme, options=config.graph_options())
    run_passes(graph)
    return lower_graph(graph, config)


def compile_rnn(
    weights: Dict[str, np.ndarray],
    scheme: Optional[str] = None,
    config: EngineConfig = EngineConfig(),
) -> ModelPlan:
    """Compile a bare GRU weight dict (``gru.cell{i}.weight_ih/_hh`` keys,
    the :meth:`~repro.speech.model.GRUAcousticModel.prunable_weights` /
    Table II sweep naming) into an RNN-only plan with zero biases.

    Used by the ``--engine`` latency paths, which care about the
    recurrent compute of a sparsity pattern, not trained biases or the
    output projection.
    """
    _validate_scheme(scheme)
    graph = rnn_graph_from_weights(
        weights, scheme=scheme, options=config.graph_options()
    )
    run_passes(graph)
    return lower_graph(graph, config)
