"""Versioned on-disk registry of compiled-plan artifacts.

:mod:`repro.engine.artifact` moves one ``.npz`` by path; this module
turns those artifacts into a *population* of deployable model versions —
the bridge between the autotuning loop (every :func:`tune_plan` winner
or sweep grid cell can be published) and the serving fleet (the fabric
resolves plans by name/version and records its swap/canary decisions
back into the version's metadata).

Layout — one directory per published version::

    <root>/<name>/v<N>/
        plan.npz     the checksummed compiled artifact (save_plan format)
        meta.json    metadata: scheme, slot formats, tuned backend,
                     tune_plan trace summary, parent-version lineage,
                     artifact SHA-256, status + decision history

Guarantees:

* **Atomic publish.** A version is staged into a temp directory inside
  the registry root and published with one ``os.rename`` — a concurrent
  reader (or a crashed publisher) never observes a partial version.
  Version ids are dense (``v1``, ``v2``, …) and immutable: publishing
  an id that exists raises :class:`~repro.errors.RegistryError`.
* **Integrity on load.** ``meta.json`` records the artifact file's
  SHA-256 at publish; :meth:`PlanRegistry.load` re-hashes the bytes
  before handing them to :func:`load_plan` (which then verifies the
  inner content checksum), so bit rot surfaces as a typed
  :class:`~repro.errors.RegistryError`, never a numpy traceback.
* **Lineage.** Each version may name its ``parent`` version; canary and
  hot-swap decisions are appended to the version's ``history`` (with an
  atomic metadata rewrite), so ``why is v3 serving?`` is answerable
  from the registry alone.

See ``docs/registry.md`` for the swap/canary/rollback lifecycle.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.engine.artifact import load_plan, save_plan
from repro.engine.plan import ModelPlan
from repro.errors import RegistryError
from repro.utils.atomic_write import atomic_write_json

ARTIFACT_FILE = "plan.npz"
METADATA_FILE = "meta.json"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v([1-9][0-9]*)$")


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _normalize_version(version: Union[str, int]) -> str:
    """``3`` / ``"3"`` / ``"v3"`` → ``"v3"``; anything else is an error."""
    if isinstance(version, int):
        version = f"v{version}"
    version = str(version)
    if not version.startswith("v"):
        version = f"v{version}"
    if not _VERSION_RE.match(version):
        raise RegistryError(f"malformed version id {version!r} (want 'v<N>')")
    return version


def summarize_tuning(result) -> Dict:
    """Compress a :class:`~repro.compiler.autotune.PlanTuningResult`
    into the JSON-safe trace summary stored in version metadata."""
    best = result.best
    return {
        "baseline_s": float(result.baseline_s),
        "tuned_s": float(best.measured_s),
        "speedup": float(result.speedup),
        "num_evaluated": int(result.num_evaluated),
        "best_label": best.label,
        "best_formats": best.describe_formats(),
        "best_backend": best.backend,
    }


@dataclass(frozen=True)
class RegistryEntry:
    """One resolved version: where it lives and what was recorded."""

    name: str
    version: str
    path: Path  # the version directory
    artifact_path: Path  # the .npz inside it
    meta: Dict

    @property
    def parent(self) -> Optional[str]:
        return self.meta.get("parent")

    @property
    def status(self) -> str:
        return self.meta.get("status", "published")


class PlanRegistry:
    """A directory of named, versioned, integrity-checked model plans."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise RegistryError(
                f"cannot create registry root {self.root}: {exc}"
            ) from exc

    # -- publish ----------------------------------------------------------
    def publish(
        self,
        name: str,
        plan: ModelPlan,
        version: Optional[Union[str, int]] = None,
        parent: Optional[Union[str, int]] = None,
        tune: Optional[Union[Dict, object]] = None,
        extra: Optional[Dict] = None,
    ) -> RegistryEntry:
        """Publish ``plan`` as a new immutable version of ``name``.

        ``version`` defaults to the next dense id (``v1`` for a new
        name).  ``parent`` records lineage and must already exist.
        ``tune`` accepts a :class:`~repro.compiler.autotune.PlanTuningResult`
        (summarized via :func:`summarize_tuning`) or a pre-built dict.
        The publish is atomic: the version directory appears fully
        formed or not at all.
        """
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r} "
                "(want [A-Za-z0-9][A-Za-z0-9._-]*)"
            )
        existing = self.versions(name) if (self.root / name).is_dir() else []
        if version is None:
            version = f"v{len(existing) + 1}" if existing else "v1"
        version = _normalize_version(version)
        if version in existing:
            raise RegistryError(
                f"{name}/{version} already exists; versions are immutable"
            )
        if parent is not None:
            parent = _normalize_version(parent)
            if parent not in existing:
                raise RegistryError(
                    f"parent {name}/{parent} does not exist"
                )
        if tune is not None and not isinstance(tune, dict):
            tune = summarize_tuning(tune)

        meta = {
            "name": name,
            "version": version,
            "created_unix": time.time(),
            "scheme": plan.scheme,
            "cell_type": plan.cell_type,
            "backend": plan.backend,
            "input_dim": int(plan.input_dim),
            "hidden_size": int(plan.hidden_size),
            "num_layers": len(plan.layers),
            "nbytes": int(plan.nbytes()),
            "signature": _jsonable_signature(plan),
            "formats": dict(plan.graph.formats()) if plan.graph else {},
            "parent": parent,
            "tune": tune,
            "extra": dict(extra) if extra else {},
            "status": "published",
            "history": [],
        }

        try:
            staging = Path(
                tempfile.mkdtemp(dir=self.root, prefix=f".staging-{name}-")
            )
        except OSError as exc:
            raise RegistryError(
                f"cannot stage publish under {self.root}: {exc}"
            ) from exc
        try:
            artifact = staging / ARTIFACT_FILE
            save_plan(artifact, plan)
            meta["artifact_sha256"] = _file_sha256(artifact)
            _write_json(staging / METADATA_FILE, meta)
            target = self.root / name / version
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                # Plain rename (not replace): fails instead of
                # clobbering if the version raced into existence.
                os.rename(staging, target)
            except OSError as exc:
                raise RegistryError(
                    f"cannot publish {name}/{version}: {exc}"
                ) from exc
        except BaseException:
            _remove_tree(staging)
            raise
        return RegistryEntry(
            name=name,
            version=version,
            path=target,
            artifact_path=target / ARTIFACT_FILE,
            meta=meta,
        )

    # -- resolve / load ---------------------------------------------------
    def names(self) -> List[str]:
        """Every model name with at least one published version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and _NAME_RE.match(entry.name)
            and self.versions(entry.name)
        )

    def versions(self, name: str) -> List[str]:
        """Published version ids of ``name``, oldest first."""
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_RE.match(entry.name)
            if (
                match
                and entry.is_dir()
                and (entry / METADATA_FILE).is_file()
                and (entry / ARTIFACT_FILE).is_file()
            ):
                found.append((int(match.group(1)), entry.name))
        return [version for _, version in sorted(found)]

    def resolve(
        self, name: str, version: Union[str, int] = "latest"
    ) -> RegistryEntry:
        """Look up ``name``/``version`` (``"latest"`` or a pin like
        ``"v2"``); raises :class:`~repro.errors.RegistryError` if the
        name or version is unknown."""
        published = self.versions(name)
        if not published:
            raise RegistryError(
                f"unknown model {name!r} in registry {self.root} "
                f"(known: {self.names() or 'none'})"
            )
        if version == "latest":
            version = published[-1]
        else:
            version = _normalize_version(version)
            if version not in published:
                raise RegistryError(
                    f"unknown version {name}/{version} "
                    f"(published: {', '.join(published)})"
                )
        path = self.root / name / version
        return RegistryEntry(
            name=name,
            version=version,
            path=path,
            artifact_path=path / ARTIFACT_FILE,
            meta=self._read_meta(path),
        )

    def load(
        self, name: str, version: Union[str, int] = "latest"
    ) -> ModelPlan:
        """Resolve, verify integrity, and reload the plan.

        The artifact's bytes are re-hashed against the SHA-256 recorded
        at publish before :func:`load_plan` runs, so silent corruption
        of the registry directory raises a typed
        :class:`~repro.errors.RegistryError`.
        """
        entry = self.resolve(name, version)
        self.verify(entry)
        return load_plan(entry.artifact_path)

    def verify(self, entry: RegistryEntry) -> None:
        """Check the artifact file against its published SHA-256."""
        recorded = entry.meta.get("artifact_sha256")
        if recorded is None:
            raise RegistryError(
                f"{entry.name}/{entry.version} metadata carries no "
                "artifact checksum"
            )
        try:
            actual = _file_sha256(entry.artifact_path)
        except OSError as exc:
            raise RegistryError(
                f"cannot read {entry.artifact_path}: {exc}"
            ) from exc
        if actual != recorded:
            raise RegistryError(
                f"{entry.name}/{entry.version} failed integrity "
                f"verification (published {recorded[:12]}…, "
                f"on disk {actual[:12]}…)"
            )

    def lineage(
        self, name: str, version: Union[str, int] = "latest"
    ) -> List[RegistryEntry]:
        """The parent chain of ``version``, oldest ancestor first."""
        chain = [self.resolve(name, version)]
        seen = {chain[0].version}
        while chain[-1].parent is not None:
            parent = chain[-1].parent
            if parent in seen:  # defensive: corrupt metadata cycle
                raise RegistryError(
                    f"lineage cycle at {name}/{parent}"
                )
            chain.append(self.resolve(name, parent))
            seen.add(parent)
        return list(reversed(chain))

    # -- decisions --------------------------------------------------------
    def record_decision(
        self,
        name: str,
        version: Union[str, int],
        decision: Dict,
        status: Optional[str] = None,
    ) -> Dict:
        """Append a deployment decision (canary verdict, hot-swap, …) to
        the version's history, optionally moving its ``status``.

        The metadata file is rewritten atomically (temp + ``os.replace``)
        so a crash mid-record leaves the previous metadata intact.
        Returns the updated metadata dict.
        """
        entry = self.resolve(name, version)
        meta = dict(entry.meta)
        record = dict(decision)
        record.setdefault("recorded_unix", time.time())
        meta.setdefault("history", [])
        meta["history"] = list(meta["history"]) + [record]
        if status is not None:
            meta["status"] = status
        _write_json(entry.path / METADATA_FILE, meta)
        return meta

    # -- internals --------------------------------------------------------
    def _read_meta(self, version_dir: Path) -> Dict:
        try:
            with open(version_dir / METADATA_FILE, "r", encoding="utf-8") as f:
                meta = json.load(f)
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"unreadable registry metadata in {version_dir}: {exc}"
            ) from exc
        if not isinstance(meta, dict):
            raise RegistryError(
                f"registry metadata in {version_dir} is not a JSON object"
            )
        return meta


def _jsonable_signature(plan: ModelPlan) -> List:
    cell_type, layers, classes = plan.signature()
    return [cell_type, [list(layer) for layer in layers], classes]


def _write_json(path: Path, payload: Dict) -> None:
    """Durable atomic JSON write (temp file + fsync + ``os.replace``)."""
    try:
        atomic_write_json(path, payload)
    except (OSError, TypeError, ValueError) as exc:
        # TypeError/ValueError: a non-JSON-serializable payload — surface
        # typed like any other failed registry write.
        raise RegistryError(f"cannot write {path}: {exc}") from exc


def _remove_tree(root: Path) -> None:
    """Best-effort cleanup of an abandoned staging directory."""
    import shutil

    shutil.rmtree(root, ignore_errors=True)


__all__ = [
    "ARTIFACT_FILE",
    "METADATA_FILE",
    "PlanRegistry",
    "RegistryEntry",
    "summarize_tuning",
]
