"""Compiled-plan artifacts: serialize a tuned layer graph, reload, run.

The deployment story of the unified compiler: once a model is compiled
(and optionally tuned with :func:`repro.compiler.autotune.tune_plan`),
:func:`save_plan` writes the plan's layer graph — weight/bias arrays in
full float64 plus every pass decision (per-slot sparse format, scheme,
kernel backend, grids, tiles) — into a single ``.npz`` file.
:func:`load_plan` rebuilds the graph with those decisions *pinned* and
lowers it through the same deterministic
:func:`~repro.engine.plan.lower_graph`, so the reloaded plan produces
**bit-identical logits** to the saved one, for every scheme and format,
including streaming state carry through
:meth:`~repro.engine.plan.ModelPlan.run_chunk`.

Crash safety: an always-on recognizer restarts by ``load_plan``-ing the
artifact a dead worker was serving, so a half-written file must never be
observable.  :func:`save_plan` therefore writes to a temporary file in
the destination directory, flushes and ``fsync``\\ s it, and publishes it
with an atomic ``os.replace`` — a reader sees either the complete old
artifact or the complete new one, never a torn write.  The header also
carries a SHA-256 over the graph metadata and every array's bytes;
:func:`load_plan` recomputes it and raises
:class:`~repro.errors.ArtifactError` (instead of surfacing a numpy/zip
traceback) on truncated, corrupted, or foreign files.

Format: an ``npz`` archive with one ``meta.json`` entry (the graph
header from :func:`repro.compiler.ir.graph_to_arrays` wrapped with the
checksum, UTF-8 JSON) and one entry per weight/param array.
"""

from __future__ import annotations

import json
import struct
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.compiler.ir import graph_from_arrays, graph_to_arrays
from repro.engine.plan import ModelPlan, lower_graph
from repro.errors import ArtifactError, ConfigError
from repro.utils.atomic_write import atomic_write, content_checksum

_META_KEY = "meta.json"
_CHECKSUM_KEY = "__checksum__"

# The checksum primitive is shared with training checkpoints; the old
# private name stays importable for callers inside the engine.
_content_checksum = content_checksum


def save_plan(path: Union[str, Path], plan: ModelPlan) -> Path:
    """Write ``plan``'s layer graph to ``path`` as a compiled artifact.

    The plan must have been compiled through the unified pipeline (every
    ``compile_model``/``compile_rnn``/``lower_graph`` plan is); a
    hand-assembled :class:`ModelPlan` without a graph cannot round-trip.

    The write is crash-safe: the archive lands in a temp file next to
    ``path``, is fsync'd, and is published with an atomic
    ``os.replace`` — a concurrent or post-crash reader never observes a
    partially written artifact.
    """
    if plan.graph is None:
        raise ConfigError(
            "plan has no layer graph attached; only plans compiled through "
            "the unified pipeline can be saved"
        )
    path = Path(path)
    meta, arrays = graph_to_arrays(plan.graph)
    header = {"graph": meta, _CHECKSUM_KEY: _content_checksum(meta, arrays)}
    payload = json.dumps(header).encode("utf-8")
    arrays[_META_KEY] = np.frombuffer(payload, dtype=np.uint8)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(path, lambda handle: np.savez_compressed(handle, **arrays))
    except OSError as exc:
        raise ArtifactError(f"cannot write artifact to {path}: {exc}") from exc
    return path


def load_plan(path: Union[str, Path]) -> ModelPlan:
    """Reload a compiled artifact into a ready-to-run :class:`ModelPlan`.

    The recorded format/scheme/backend decisions are pinned, so no pass
    re-decides anything: lowering replays the saved compilation exactly
    and the returned plan's logits are bit-identical to the saved plan's.

    Raises :class:`~repro.errors.ArtifactError` if the file is missing,
    is not a compiled-plan artifact, is truncated, or fails its content
    checksum — never a raw numpy/zipfile traceback.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if _META_KEY not in data:
                raise ArtifactError(f"{path} is not a compiled-plan artifact")
            header = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
            arrays = {key: data[key] for key in data.files if key != _META_KEY}
    except ArtifactError:
        raise
    except (
        OSError,
        EOFError,
        ValueError,
        KeyError,
        struct.error,
        zipfile.BadZipFile,
    ) as exc:
        raise ArtifactError(
            f"{path} is not a readable compiled-plan artifact "
            f"(missing, truncated, or corrupted): {exc}"
        ) from exc
    if isinstance(header, dict) and "graph" in header:
        meta = header["graph"]
        recorded = header.get(_CHECKSUM_KEY)
        if recorded is not None:
            actual = _content_checksum(meta, arrays)
            if actual != recorded:
                raise ArtifactError(
                    f"{path} failed its content checksum "
                    f"(recorded {recorded[:12]}…, got {actual[:12]}…): "
                    "the artifact bytes were corrupted after save"
                )
    else:
        # Pre-checksum artifacts stored the bare graph header.
        meta = header
    try:
        graph = graph_from_arrays(meta, arrays)
    except Exception as exc:
        raise ArtifactError(
            f"{path} carries a malformed layer-graph header: {exc}"
        ) from exc
    return lower_graph(graph)


__all__ = ["save_plan", "load_plan"]
