"""Compiled-plan artifacts: serialize a tuned layer graph, reload, run.

The deployment story of the unified compiler: once a model is compiled
(and optionally tuned with :func:`repro.compiler.autotune.tune_plan`),
:func:`save_plan` writes the plan's layer graph — weight/bias arrays in
full float64 plus every pass decision (per-slot sparse format, scheme,
kernel backend, grids, tiles) — into a single ``.npz`` file.
:func:`load_plan` rebuilds the graph with those decisions *pinned* and
lowers it through the same deterministic
:func:`~repro.engine.plan.lower_graph`, so the reloaded plan produces
**bit-identical logits** to the saved one, for every scheme and format,
including streaming state carry through
:meth:`~repro.engine.plan.ModelPlan.run_chunk`.

Format: an ``npz`` archive with one ``meta.json`` entry (the graph
header from :func:`repro.compiler.ir.graph_to_arrays`, UTF-8 JSON) and
one entry per weight/param array.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.compiler.ir import graph_from_arrays, graph_to_arrays
from repro.engine.plan import ModelPlan, lower_graph
from repro.errors import ConfigError

_META_KEY = "meta.json"


def save_plan(path: Union[str, Path], plan: ModelPlan) -> Path:
    """Write ``plan``'s layer graph to ``path`` as a compiled artifact.

    The plan must have been compiled through the unified pipeline (every
    ``compile_model``/``compile_rnn``/``lower_graph`` plan is); a
    hand-assembled :class:`ModelPlan` without a graph cannot round-trip.
    """
    if plan.graph is None:
        raise ConfigError(
            "plan has no layer graph attached; only plans compiled through "
            "the unified pipeline can be saved"
        )
    path = Path(path)
    meta, arrays = graph_to_arrays(plan.graph)
    payload = json.dumps(meta).encode("utf-8")
    arrays[_META_KEY] = np.frombuffer(payload, dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_plan(path: Union[str, Path]) -> ModelPlan:
    """Reload a compiled artifact into a ready-to-run :class:`ModelPlan`.

    The recorded format/scheme/backend decisions are pinned, so no pass
    re-decides anything: lowering replays the saved compilation exactly
    and the returned plan's logits are bit-identical to the saved plan's.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ConfigError(f"{path} is not a compiled-plan artifact")
        meta = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
        arrays = {key: data[key] for key in data.files if key != _META_KEY}
    graph = graph_from_arrays(meta, arrays)
    return lower_graph(graph)


__all__ = ["save_plan", "load_plan"]
