"""``python -m repro`` — the experiment runner CLI."""

import sys

from repro.eval.runner import main

if __name__ == "__main__":
    sys.exit(main())
