"""Atomic, checksummed training checkpoints with bit-exact resume.

A prune→retrain run is hours of state: model weights, Adam moments, the
ADMM/BSP phase machine (Z/U variables, hardened masks, ramp cursor),
the epoch/step cursor, and the loss trace.  A checkpoint captures *all*
of it, so a trainer killed at any instant — mid-epoch included — resumes
and finishes with **bit-identical** final weights and loss curve versus
a run that was never interrupted.

Three properties make that guarantee honest:

* **Atomic + checksummed files.**  Checkpoints are written with the
  shared fsync+rename discipline (:func:`repro.utils.atomic_write`) and
  carry a SHA-256 over the header and every array
  (:func:`~repro.utils.atomic_write.content_checksum`).  A crash during
  a save leaves the previous checkpoint intact; corruption surfaces as
  a typed :class:`~repro.errors.CheckpointError`, never a numpy
  traceback.
* **Consistent cut points.**  :func:`run_checkpointed` saves from the
  trainer's ``on_step`` hook, which fires after the optimizer step and
  the pruning method's ``on_batch_end`` — a state the uninterrupted run
  also passes through exactly.
* **Counter-based RNG.**  Every random choice in training derives from
  ``derive_seed(seed, epoch)`` — the epoch/step cursor *is* the RNG
  state — so the checkpoint records the cursor (plus the seed) rather
  than an opaque generator blob, and resume replays the identical
  shuffle.

Format: one ``.npz`` with a ``meta.json`` entry (JSON header: version,
cursors, losses, pruning-method metadata, checksum) plus arrays
prefixed ``model::``, ``optim::``, and ``method::``.
"""

from __future__ import annotations

import json
import struct
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.pruning.base import PruningMethod
from repro.speech.trainer import Trainer
from repro.utils.atomic_write import atomic_write, content_checksum

CHECKPOINT_VERSION = 1

_META_KEY = "meta.json"
_CHECKSUM_KEY = "__checksum__"
_MODEL_PREFIX = "model::"
_OPTIM_PREFIX = "optim::"
_METHOD_PREFIX = "method::"


@dataclass
class TrainingCheckpoint:
    """A loaded checkpoint: JSON header plus named arrays."""

    meta: Dict
    arrays: Dict[str, np.ndarray]

    @property
    def epoch(self) -> int:
        return int(self.meta["epoch"])

    @property
    def step(self) -> int:
        return int(self.meta["step"])

    @property
    def epoch_losses(self) -> List[float]:
        return [float(x) for x in self.meta["epoch_losses"]]

    @property
    def log_losses(self) -> List[float]:
        return [float(x) for x in self.meta["log_losses"]]

    def _named(self, prefix: str) -> Dict[str, np.ndarray]:
        return {
            key[len(prefix):]: value
            for key, value in self.arrays.items()
            if key.startswith(prefix)
        }

    def model_state(self) -> Dict[str, np.ndarray]:
        """The checkpointed model weights, name → array (a copy view of
        the archive; safe to pass to ``Module.load_state_dict``)."""
        return self._named(_MODEL_PREFIX)


def save_training_checkpoint(
    path: Union[str, Path],
    trainer: Trainer,
    method: Optional[PruningMethod] = None,
    *,
    step: int = 0,
    epoch_losses: Optional[List[float]] = None,
    extra: Optional[Dict] = None,
) -> Path:
    """Atomically write the complete training state to ``path``.

    ``step`` is the number of completed optimizer steps inside the
    *current* (``trainer.epoch``) epoch — ``0`` means an epoch boundary —
    and ``epoch_losses`` their recorded batch losses.  ``extra`` is an
    arbitrary JSON-safe dict stored verbatim (sweep cells record their
    cell spec and attempt count here).
    """
    if step < 0:
        raise ConfigError(f"step must be >= 0, got {step}")
    epoch_losses = [float(x) for x in (epoch_losses or [])]
    if step != len(epoch_losses):
        raise ConfigError(
            f"step {step} does not match {len(epoch_losses)} epoch losses"
        )
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    for name, value in trainer.model.state_dict().items():
        arrays[_MODEL_PREFIX + name] = value
    for key, value in trainer.optimizer.state_dict().items():
        arrays[_OPTIM_PREFIX + key] = value
    method_meta = None
    if method is not None:
        if not hasattr(method, "state_dict"):
            raise ConfigError(
                f"pruning method {type(method).__name__} has no state_dict(); "
                "it cannot be checkpointed"
            )
        method_state = method.state_dict()
        method_meta = method_state["meta"]
        for key, value in method_state["arrays"].items():
            arrays[_METHOD_PREFIX + key] = value
    meta = {
        "version": CHECKPOINT_VERSION,
        "epoch": int(trainer.epoch),
        "step": int(step),
        "epoch_losses": epoch_losses,
        "log_losses": [float(x) for x in trainer.log.losses],
        # The counter-based RNG cursor: seed + epoch fully determine the
        # shuffle, so this *is* the serialized RNG state.
        "rng": {"seed": int(trainer.config.seed), "epoch": int(trainer.epoch)},
        "method": method_meta,
        "method_class": type(method).__name__ if method is not None else None,
        "extra": dict(extra) if extra else {},
    }
    header = {"train": meta, _CHECKSUM_KEY: content_checksum(meta, arrays)}
    payload = json.dumps(header).encode("utf-8")
    arrays[_META_KEY] = np.frombuffer(payload, dtype=np.uint8)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(path, lambda handle: np.savez_compressed(handle, **arrays))
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint to {path}: {exc}") from exc
    return path


def load_training_checkpoint(path: Union[str, Path]) -> TrainingCheckpoint:
    """Read and integrity-check a checkpoint (no state is restored yet).

    Raises :class:`~repro.errors.CheckpointError` if the file is
    missing, truncated, foreign, or fails its content checksum.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if _META_KEY not in data:
                raise CheckpointError(f"{path} is not a training checkpoint")
            header = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
            arrays = {key: data[key] for key in data.files if key != _META_KEY}
    except CheckpointError:
        raise
    except (OSError, EOFError, ValueError, KeyError, struct.error, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"{path} is not a readable training checkpoint "
            f"(missing, truncated, or corrupted): {exc}"
        ) from exc
    if not isinstance(header, dict) or "train" not in header:
        raise CheckpointError(f"{path} is not a training checkpoint")
    meta = header["train"]
    recorded = header.get(_CHECKSUM_KEY)
    if recorded is None:
        raise CheckpointError(f"{path} carries no content checksum")
    actual = content_checksum(meta, arrays)
    if actual != recorded:
        raise CheckpointError(
            f"{path} failed its content checksum "
            f"(recorded {recorded[:12]}…, got {actual[:12]}…): "
            "the checkpoint bytes were corrupted after save"
        )
    if int(meta.get("version", -1)) != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {meta.get('version')!r}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return TrainingCheckpoint(meta=meta, arrays=arrays)


def restore_training_checkpoint(
    checkpoint: Union[TrainingCheckpoint, str, Path],
    trainer: Trainer,
    method: Optional[PruningMethod] = None,
) -> TrainingCheckpoint:
    """Restore ``trainer`` (and ``method``) from a checkpoint in place.

    After this call, ``trainer.train_epoch(method,
    start_step=ckpt.step, prior_losses=ckpt.epoch_losses)`` continues
    bit-identically to the run that wrote the checkpoint.  Mismatched
    shapes/names raise :class:`~repro.errors.CheckpointError`.
    """
    if not isinstance(checkpoint, TrainingCheckpoint):
        checkpoint = load_training_checkpoint(checkpoint)
    saved_class = checkpoint.meta.get("method_class")
    given_class = type(method).__name__ if method is not None else None
    if saved_class != given_class:
        raise CheckpointError(
            f"checkpoint was saved with pruning method {saved_class!r} "
            f"but is being restored with {given_class!r}"
        )
    try:
        trainer.model.load_state_dict(checkpoint._named(_MODEL_PREFIX))
        trainer.optimizer.load_state_dict(checkpoint._named(_OPTIM_PREFIX))
        if method is not None:
            method.load_state_dict(
                {
                    "meta": checkpoint.meta["method"],
                    "arrays": checkpoint._named(_METHOD_PREFIX),
                }
            )
    except (KeyError, ValueError, ConfigError) as exc:
        raise CheckpointError(
            f"checkpoint does not match the trainer it is being restored "
            f"into: {exc}"
        ) from exc
    trainer.epoch = checkpoint.epoch
    trainer.log.losses = checkpoint.log_losses
    return checkpoint


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often :func:`run_checkpointed` saves."""

    path: Path
    every_steps: int = 1

    def __post_init__(self) -> None:
        if self.every_steps < 1:
            raise ConfigError(
                f"every_steps must be >= 1, got {self.every_steps}"
            )


def run_checkpointed(
    trainer: Trainer,
    method: Optional[PruningMethod],
    checkpoint: CheckpointConfig,
    *,
    max_epochs: int,
    extra: Optional[Dict] = None,
    on_step: Optional[Callable[[int], None]] = None,
) -> int:
    """Drive training to completion with periodic checkpoints and
    automatic resume; returns the number of epochs run *in this call*.

    If ``checkpoint.path`` exists, training resumes from it (mid-epoch
    cut points included); otherwise it starts fresh and writes the
    first checkpoint after ``every_steps`` optimizer steps.  Training
    runs until ``method.finished`` (or ``trainer.epoch == max_epochs``
    when ``method`` is ``None``; ``max_epochs`` also bounds pruning
    runs).  ``on_step(global_step)`` fires after every optimizer step —
    the sweep harness hangs its seeded
    :class:`~repro.utils.faults.FaultInjector` here.
    """
    path = Path(checkpoint.path)
    start_step = 0
    epoch_losses: List[float] = []
    if path.exists():
        restored = restore_training_checkpoint(path, trainer, method)
        start_step = restored.step
        epoch_losses = restored.epoch_losses
    epochs_run = 0

    def _finished() -> bool:
        if method is not None and method.finished:
            return True
        return trainer.epoch >= max_epochs

    global_step = [trainer.epoch * trainer.steps_per_epoch() + start_step]

    def _hook(completed_steps: int, losses: List[float]) -> None:
        global_step[0] += 1
        if completed_steps % checkpoint.every_steps == 0:
            save_training_checkpoint(
                path,
                trainer,
                method,
                step=completed_steps,
                epoch_losses=losses,
                extra=extra,
            )
        if on_step is not None:
            on_step(global_step[0])

    while not _finished():
        trainer.train_epoch(
            method,
            start_step=start_step,
            prior_losses=epoch_losses,
            on_step=_hook,
        )
        start_step = 0
        epoch_losses = []
        epochs_run += 1
        # Epoch-boundary checkpoint: step cursor resets, epoch advances.
        save_training_checkpoint(
            path, trainer, method, step=0, epoch_losses=[], extra=extra
        )
    return epochs_run


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointConfig",
    "TrainingCheckpoint",
    "load_training_checkpoint",
    "restore_training_checkpoint",
    "run_checkpointed",
    "save_training_checkpoint",
]
