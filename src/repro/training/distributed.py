"""Data-parallel fused-BPTT training across supervised worker processes.

:class:`DistributedTrainer` is a drop-in :class:`~repro.speech.trainer.Trainer`
whose per-batch forward/backward fans out over forked gradient workers:

* The **parent owns all canonical state** — model weights, Adam slots,
  the ADMM/BSP phase machine, gradient clipping.  Workers are
  *stateless gradient servers*: each step the parent broadcasts the
  current flattened weights in bounded chunks over the worker's pipe
  together with the worker's shard of utterance indices; the worker
  (which inherited the dataset and model structure at fork) collates
  its shard, runs the fused-BPTT forward/backward, and streams the
  flattened gradient back chunk by chunk.
* **The reduction is exact and deterministic.**  Masked cross-entropy
  averages over real frames, so the full-batch gradient is
  ``Σ_w (M_w / M) · g_w`` with ``M_w`` the shard's frame count — the
  parent applies that scaling and sums the chunks in fixed worker
  order.  A run is therefore bit-identical run-to-run at a fixed worker
  count (shard-local padding means results *across* worker counts agree
  only to float tolerance, which is documented, not hidden).
* **Supervision mirrors the serving fabric.**  Failures are detected
  synchronously (RPC deadline as stall detector, dead process / broken
  pipe as crash detector) and restarts use the fabric's capped
  exponential backoff and per-worker restart budget.  Because workers
  are stateless, re-admission at the current step is literal: the
  replacement worker is simply re-sent the in-flight step request —
  weights and shard — and the step completes with the other workers'
  already-received gradients untouched.  Past the budget the trainer
  raises a typed :class:`~repro.errors.TrainingError`.
* **Seeded per-worker RNG streams** (``spawn_rngs(seed, W)``) give each
  worker an independent deterministic stream for worker-local
  stochastic work (fault-injection jitter today, augmentation hooks
  tomorrow) without coupling it to the parent's shuffle, which remains
  the counter-based ``derive_seed(seed, epoch)``.

Fault injection: :class:`~repro.utils.faults.FaultConfig` plugs in
unchanged — ``crash_after_chunks=k`` kills the targeted gradient worker
just before its ``k+1``-th *step*, ``stall_after_chunks`` wedges it so
the RPC deadline must fire.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, TrainingError
from repro.nn import functional as F
from repro.nn.data import Dataset, collate
from repro.nn.tensor import Tensor
from repro.speech.model import GRUAcousticModel
from repro.speech.trainer import Trainer, TrainerConfig
from repro.utils.faults import FaultConfig, FaultInjector
from repro.utils.rng import new_rng, spawn_rngs


@dataclass(frozen=True)
class DistConfig:
    """Settings of the data-parallel gradient fleet."""

    num_workers: int = 2
    #: Elements per pipe message when broadcasting weights / returning
    #: gradients — the chunked all-reduce granularity.
    chunk_elems: int = 1 << 15
    #: RPC deadline per step per worker; a worker silent past it is
    #: treated as stalled and restarted.
    rpc_timeout_s: float = 120.0
    max_restarts: int = 2
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    start_method: Optional[str] = None  # fork where available
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.chunk_elems < 1:
            raise ConfigError(f"chunk_elems must be >= 1, got {self.chunk_elems}")
        if self.rpc_timeout_s <= 0:
            raise ConfigError("rpc_timeout_s must be > 0")
        if self.max_restarts < 0:
            raise ConfigError(f"max_restarts must be >= 0, got {self.max_restarts}")


@dataclass
class RestartEvent:
    """One supervision action, recorded for tests and observability."""

    worker: int
    reason: str  # "crash" | "stall"
    step_id: int
    backoff_s: float


def _flatten(arrays: List[np.ndarray]) -> np.ndarray:
    return np.concatenate([np.ascontiguousarray(a).ravel() for a in arrays])


def _chunk_bounds(total: int, chunk_elems: int) -> List[Tuple[int, int]]:
    return [
        (start, min(start + chunk_elems, total))
        for start in range(0, max(total, 1), chunk_elems)
    ]


def _shard_backward(model: GRUAcousticModel, batch) -> float:
    """Forward/backward the shard batch; gradients land on the model."""
    logits = model(Tensor(batch.features))
    t, b, c = logits.shape
    loss = F.cross_entropy(
        logits.reshape(t * b, c),
        batch.labels.reshape(-1),
        weight_mask=batch.mask.reshape(-1),
    )
    loss.backward()
    return float(loss.data)


def _gradient_worker_main(
    conn,
    model: GRUAcousticModel,
    train_set: Dataset,
    worker_index: int,
    num_workers: int,
    incarnation: int,
    chunk_elems: int,
    fault_config: Optional[FaultConfig],
    seed: int,
) -> None:
    """Stateless gradient server: recv weights+shard, send gradients."""
    injector = FaultInjector(fault_config)
    # Seeded per-worker stream, independent of the parent's shuffle.
    _worker_rng = spawn_rngs(new_rng(seed), num_workers)[worker_index]
    model.train()
    params = list(model.parameters())
    sizes = [p.data.size for p in params]
    total = int(sum(sizes))
    bounds = _chunk_bounds(total, chunk_elems)
    flat = np.empty(total, dtype=np.float64)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "exit":
                return
            if kind != "step":
                continue
            _, step_id, shard = message
            for index, (start, stop) in enumerate(bounds):
                chunk_msg = conn.recv()
                assert chunk_msg[0] == "wchunk" and chunk_msg[2] == index
                flat[start:stop] = chunk_msg[3]
            # The fault fires after the request is fully received: the
            # in-flight step is lost with the worker, exactly like a
            # fabric worker dying on a received-but-unprocessed chunk.
            injector.on_step()
            offset = 0
            for param, size in zip(params, sizes):
                param.data[...] = flat[offset : offset + size].reshape(
                    param.data.shape
                )
                offset += size
                param.zero_grad()
            batch = collate([train_set[int(i)] for i in shard])
            loss = _shard_backward(model, batch)
            grads = _flatten(
                [
                    p.grad if p.grad is not None else np.zeros_like(p.data)
                    for p in params
                ]
            )
            injector.before_send()
            for index, (start, stop) in enumerate(bounds):
                conn.send(("gchunk", step_id, index, grads[start:stop]))
            conn.send(("done", step_id, loss, int(batch.num_frames())))
    except (BrokenPipeError, OSError):
        return


class _GradientWorker:
    """Parent-side handle: one pipe + process per gradient worker."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.incarnation = -1
        self.conn = None
        self.process = None

    def spawn(self, ctx, model, train_set, config: DistConfig, seed: int) -> None:
        self.incarnation += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        fault = None
        if config.faults is not None and config.faults.applies_to(
            self.index, self.incarnation
        ):
            fault = config.faults
        self.process = ctx.Process(
            target=_gradient_worker_main,
            args=(
                child_conn,
                model,
                train_set,
                self.index,
                config.num_workers,
                self.incarnation,
                config.chunk_elems,
                fault,
                seed,
            ),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        if self.process is not None:
            self.process.join(timeout=5.0)
        self.kill()


class DistributedTrainer(Trainer):
    """Drop-in trainer that shards each batch across gradient workers.

    Everything outside the per-batch gradient computation — pruning
    hooks, ADMM penalties, clipping, the Adam step, evaluation, the
    epoch shuffle — runs in the parent through the inherited
    :class:`Trainer` code path, so checkpoints taken from a distributed
    run restore into a single-process trainer and vice versa.
    """

    def __init__(
        self,
        model: GRUAcousticModel,
        train_set: Dataset,
        test_set: Dataset,
        config: TrainerConfig = TrainerConfig(),
        dist: DistConfig = DistConfig(),
    ) -> None:
        super().__init__(model, train_set, test_set, config)
        self.dist = dist
        method = dist.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else multiprocessing.get_start_method()
            )
        self._ctx = multiprocessing.get_context(method)
        self._params = list(model.parameters())
        self._sizes = [p.data.size for p in self._params]
        self._total = int(sum(self._sizes))
        self._bounds = _chunk_bounds(self._total, dist.chunk_elems)
        self._step_id = 0
        self.restarts: Dict[int, int] = {w: 0 for w in range(dist.num_workers)}
        self.restart_log: List[RestartEvent] = []
        self.backoff_history: List[float] = []
        self._workers = [_GradientWorker(w) for w in range(dist.num_workers)]
        for worker in self._workers:
            worker.spawn(self._ctx, model, train_set, dist, config.seed)

    # -- supervision -------------------------------------------------------
    def _backoff_for(self, restart_number: int) -> float:
        if self.dist.backoff_base_s <= 0:
            return 0.0
        return min(
            self.dist.backoff_base_s * (2.0 ** (restart_number - 1)),
            self.dist.backoff_cap_s,
        )

    def _handle_failure(self, worker: _GradientWorker, reason: str) -> None:
        """Kill + backoff + respawn, or raise past the restart budget."""
        worker.kill()
        if self.restarts[worker.index] >= self.dist.max_restarts:
            raise TrainingError(
                f"gradient worker {worker.index} exceeded its restart "
                f"budget ({self.dist.max_restarts}) after a {reason}"
            )
        self.restarts[worker.index] += 1
        backoff = self._backoff_for(self.restarts[worker.index])
        self.restart_log.append(
            RestartEvent(
                worker=worker.index,
                reason=reason,
                step_id=self._step_id,
                backoff_s=backoff,
            )
        )
        self.backoff_history.append(backoff)
        if backoff > 0:
            time.sleep(backoff)
        worker.spawn(self._ctx, self.model, self.train_set, self.dist, self.config.seed)

    # -- the distributed step ---------------------------------------------
    def _send_step(self, worker: _GradientWorker, shard: np.ndarray, flat: np.ndarray) -> None:
        worker.conn.send(("step", self._step_id, shard))
        for index, (start, stop) in enumerate(self._bounds):
            worker.conn.send(("wchunk", self._step_id, index, flat[start:stop]))

    def _dispatch(self, w: int, shard: np.ndarray, flat: np.ndarray) -> None:
        """Send the step request, restarting the worker if the send fails
        (the pipe breaks when the target died before the dispatch)."""
        while True:
            try:
                self._send_step(self._workers[w], shard, flat)
                return
            except (BrokenPipeError, OSError):
                self._handle_failure(self._workers[w], "crash")

    def _collect(
        self, worker: _GradientWorker, deadline: float
    ) -> Tuple[np.ndarray, float, int]:
        """Gather one worker's gradient chunks + loss; classify failures."""
        grads = np.empty(self._total, dtype=np.float64)
        received = 0
        loss = None
        frames = 0
        while loss is None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                reason = "crash" if not worker.alive() else "stall"
                raise _StepFailure(reason)
            try:
                if not worker.conn.poll(min(remaining, 0.05)):
                    if not worker.alive() and not worker.conn.poll(0):
                        raise _StepFailure("crash")
                    continue
                message = worker.conn.recv()
            except (EOFError, OSError):
                raise _StepFailure("crash") from None
            kind = message[0]
            if kind == "gchunk":
                _, step_id, index, chunk = message
                if step_id != self._step_id:
                    continue  # stale chunk from a pre-restart attempt
                start, stop = self._bounds[index]
                grads[start:stop] = chunk
                received += 1
            elif kind == "done":
                _, step_id, loss_value, frame_count = message
                if step_id != self._step_id:
                    continue
                if received != len(self._bounds):
                    raise _StepFailure("crash")  # torn gradient stream
                loss = float(loss_value)
                frames = int(frame_count)
        return grads, loss, frames

    def _backward_on_batch(self, indices: np.ndarray) -> float:
        self._step_id += 1
        num_workers = self.dist.num_workers
        shards = [indices[w::num_workers] for w in range(num_workers)]
        frame_counts = [
            sum(len(self.train_set[int(i)]) for i in shard) for shard in shards
        ]
        total_frames = max(float(sum(frame_counts)), 1.0)
        flat = _flatten([p.data for p in self._params])
        active = [w for w in range(num_workers) if len(shards[w])]
        for w in active:
            self._dispatch(w, shards[w], flat)
        results: Dict[int, Tuple[np.ndarray, float, int]] = {}
        for w in active:
            deadline = time.monotonic() + self.dist.rpc_timeout_s
            while w not in results:
                try:
                    results[w] = self._collect(self._workers[w], deadline)
                except _StepFailure as failure:
                    # Restart and re-admit at the current step: the
                    # replacement gets the same weights + shard resent.
                    self._handle_failure(self._workers[w], failure.reason)
                    self._dispatch(w, shards[w], flat)
                    deadline = time.monotonic() + self.dist.rpc_timeout_s
        # Deterministic reduction: fixed worker order, frame-weighted.
        reduced = np.zeros(self._total, dtype=np.float64)
        loss = 0.0
        for w in active:
            grads, shard_loss, frames = results[w]
            if frames != frame_counts[w]:
                raise TrainingError(
                    f"worker {w} reported {frames} frames for a shard of "
                    f"{frame_counts[w]}"
                )
            scale = frame_counts[w] / total_frames
            reduced += scale * grads
            loss += scale * shard_loss
        offset = 0
        for param, size in zip(self._params, self._sizes):
            param.grad = reduced[offset : offset + size].reshape(
                param.data.shape
            ).copy()
            offset += size
        return loss

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "DistributedTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _StepFailure(Exception):
    """Internal: one worker failed during one step (reason crash|stall)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


__all__ = ["DistConfig", "DistributedTrainer", "RestartEvent"]
