"""Fault-tolerant training: checkpoints and data-parallel workers.

Two pieces sit on top of the single-process
:class:`~repro.speech.trainer.Trainer`:

* :mod:`repro.training.checkpoint` — atomic, SHA-256-checksummed
  training checkpoints (weights + Adam moments + ADMM/BSP phase state +
  epoch/step cursor + loss trace) with **bit-exact** resume, and
  :func:`run_checkpointed` to drive a prune→retrain run that survives
  being killed at any instant.
* :mod:`repro.training.distributed` — :class:`DistributedTrainer`
  shards each batch across forked gradient workers with chunked
  all-reduce over pipes and fabric-style crash/stall supervision.

Quickstart::

    from repro import training

    trainer = training.DistributedTrainer(
        model, train_set, test_set, dist=training.DistConfig(num_workers=4)
    )
    training.run_checkpointed(
        trainer, bsp_pruner,
        training.CheckpointConfig(path="cell/checkpoint.npz", every_steps=2),
        max_epochs=20,
    )

See ``docs/training.md`` (distributed section) and ``docs/sweep.md``.
"""

from repro.training.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointConfig,
    TrainingCheckpoint,
    load_training_checkpoint,
    restore_training_checkpoint,
    run_checkpointed,
    save_training_checkpoint,
)
from repro.training.distributed import DistConfig, DistributedTrainer, RestartEvent

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointConfig",
    "TrainingCheckpoint",
    "load_training_checkpoint",
    "restore_training_checkpoint",
    "run_checkpointed",
    "save_training_checkpoint",
    "DistConfig",
    "DistributedTrainer",
    "RestartEvent",
]
