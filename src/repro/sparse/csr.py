"""Compressed Sparse Row storage — the baseline format BSPC improves on.

The byte-size model follows the paper's storage accounting: values are
stored at ``value_bytes`` per element (2 for the fp16 mobile-GPU kernels),
column indices at ``index_bytes``, and row pointers at 4 bytes.  ESE-style
non-structured pruning must pay for one index per nonzero, which is exactly
the overhead Section III-A criticizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SparsityError
from repro.kernels.plans import PlanCacheMixin
from repro.utils.validation import check_2d


@dataclass
class CSRMatrix(PlanCacheMixin):
    """CSR representation of a 2-D matrix.

    Compute (``spmv``/``spmm``) dispatches through :mod:`repro.kernels`;
    the vectorized default backend caches an execution plan on the
    instance.  Reassigning a storage field drops the cached plan; after
    mutating a stored array *in place*, call :meth:`invalidate_plan`.
    """

    shape: Tuple[int, int]
    values: np.ndarray
    col_indices: np.ndarray
    row_ptr: np.ndarray

    #: Registry op prefix used by :func:`repro.kernels.spmv`/``spmm``.
    kernel_prefix = "csr"

    _STRUCTURAL_FIELDS = frozenset({"shape", "values", "col_indices", "row_ptr"})

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.col_indices = np.asarray(self.col_indices, dtype=np.int64)
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
        rows, cols = self.shape
        if self.row_ptr.shape != (rows + 1,):
            raise SparsityError(
                f"row_ptr must have length rows+1={rows + 1}, got {self.row_ptr.shape}"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.values):
            raise SparsityError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise SparsityError("row_ptr must be non-decreasing")
        if len(self.col_indices) != len(self.values):
            raise SparsityError("col_indices and values must have equal length")
        if self.col_indices.size and (
            self.col_indices.min() < 0 or self.col_indices.max() >= cols
        ):
            raise SparsityError("col_indices out of range")

    # -- construction -----------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a dense matrix, treating exact zeros as absent.

        ``np.nonzero`` scans row-major, so values/column indices come out
        already grouped by row with columns sorted; the row pointer is a
        cumulative sum of per-row counts.
        """
        dense = check_2d(dense, "dense")
        rows, cols = dense.shape
        row_idx, col_idx = np.nonzero(dense)
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(row_idx, minlength=rows), out=row_ptr[1:])
        return cls(
            shape=(rows, cols),
            values=dense[row_idx, col_idx],
            col_indices=col_idx.astype(np.int64),
            row_ptr=row_ptr,
        )

    # -- conversion ------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Expand back to a dense matrix."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols))
        row_idx = np.repeat(np.arange(rows), np.diff(self.row_ptr))
        dense[row_idx, self.col_indices] = self.values
        return dense

    # -- queries -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.values)

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros per row."""
        return np.diff(self.row_ptr)

    def density(self) -> float:
        """Fraction of stored entries."""
        rows, cols = self.shape
        return self.nnz / float(rows * cols)

    # -- compute ---------------------------------------------------------
    def spmv(self, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
        """Sparse matrix × dense vector (dispatched through the registry)."""
        from repro import kernels

        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise SparsityError(f"x must be ({self.shape[1]},), got {x.shape}")
        return kernels.spmv(self, x, backend=backend)

    def spmm(self, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
        """Sparse matrix × dense matrix (columns are independent vectors)."""
        from repro import kernels

        x = check_2d(x, "x")
        if x.shape[0] != self.shape[1]:
            raise SparsityError(
                f"inner dimensions disagree: {self.shape} @ {x.shape}"
            )
        return kernels.spmm(self, x, backend=backend)

    # -- storage model ----------------------------------------------------
    def nbytes(self, value_bytes: int = 2, index_bytes: int = 2) -> int:
        """Model the stored size: values + column indices + row pointers."""
        return (
            self.nnz * value_bytes
            + self.nnz * index_bytes
            + len(self.row_ptr) * 4
        )
