"""Sparse-matrix storage formats: CSR/CSC baselines and the paper's BSPC."""

from repro.sparse.blocks import BlockGrid, BlockRegion, grid_for
from repro.sparse.bspc import BSPCBlock, BSPCMatrix, BSPCStrip
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = [
    "BlockGrid",
    "BlockRegion",
    "grid_for",
    "CSRMatrix",
    "CSCMatrix",
    "BSPCMatrix",
    "BSPCStrip",
    "BSPCBlock",
]
