"""Compressed Sparse Column storage.

Included because the paper's Section I discusses CSC as the classic format
for non-structured pruning (Han et al.'s Deep Compression stores CSC); the
compiler uses it only for storage-size comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SparsityError
from repro.utils.validation import check_2d


@dataclass
class CSCMatrix:
    """CSC representation of a 2-D matrix."""

    shape: Tuple[int, int]
    values: np.ndarray
    row_indices: np.ndarray
    col_ptr: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.row_indices = np.asarray(self.row_indices, dtype=np.int64)
        self.col_ptr = np.asarray(self.col_ptr, dtype=np.int64)
        rows, cols = self.shape
        if self.col_ptr.shape != (cols + 1,):
            raise SparsityError(
                f"col_ptr must have length cols+1={cols + 1}, got {self.col_ptr.shape}"
            )
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != len(self.values):
            raise SparsityError("col_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.col_ptr) < 0):
            raise SparsityError("col_ptr must be non-decreasing")
        if len(self.row_indices) != len(self.values):
            raise SparsityError("row_indices and values must have equal length")
        if self.row_indices.size and (
            self.row_indices.min() < 0 or self.row_indices.max() >= rows
        ):
            raise SparsityError("row_indices out of range")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build from a dense matrix, treating exact zeros as absent.

        ``np.nonzero`` on the transpose scans column-major, so values and
        row indices come out already grouped by column with rows sorted;
        the column pointer is a cumulative sum of per-column counts
        (mirroring the CSR construction).
        """
        dense = check_2d(dense, "dense")
        rows, cols = dense.shape
        col_idx, row_idx = np.nonzero(dense.T)
        col_ptr = np.zeros(cols + 1, dtype=np.int64)
        np.cumsum(np.bincount(col_idx, minlength=cols), out=col_ptr[1:])
        return cls(
            shape=(rows, cols),
            values=dense[row_idx, col_idx],
            row_indices=row_idx.astype(np.int64),
            col_ptr=col_ptr,
        )

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense matrix."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols))
        col_idx = np.repeat(np.arange(cols), np.diff(self.col_ptr))
        dense[self.row_indices, col_idx] = self.values
        return dense

    @property
    def nnz(self) -> int:
        return len(self.values)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix × dense vector (column-major accumulation).

        The per-column scatter loop collapses to one ``np.bincount`` over
        the row indices weighted by ``value * x[column]``.
        """
        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise SparsityError(f"x must be ({self.shape[1]},), got {x.shape}")
        col_idx = np.repeat(np.arange(self.shape[1]), np.diff(self.col_ptr))
        return np.bincount(
            self.row_indices, weights=self.values * x[col_idx], minlength=self.shape[0]
        )

    def nbytes(self, value_bytes: int = 2, index_bytes: int = 2) -> int:
        """Model the stored size: values + row indices + column pointers."""
        return (
            self.nnz * value_bytes
            + self.nnz * index_bytes
            + len(self.col_ptr) * 4
        )
