"""Block partitioning of weight matrices.

BSP (Section IV-A of the paper) divides a weight matrix into ``Numr``
horizontal row strips, and each strip into ``Numc`` column blocks.  The
:class:`BlockGrid` here is the single source of truth for that geometry:
pruning projections, the BSPC storage format, and the compiler's analysis
all share it, so block boundaries can never disagree between stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import check_positive_int


def _bounds(extent: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``extent`` into ``parts`` contiguous near-equal ranges."""
    edges = np.linspace(0, extent, parts + 1).astype(int)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(parts)]


@dataclass(frozen=True)
class BlockRegion:
    """One block of the grid: rows ``[row_start, row_stop)`` ×
    columns ``[col_start, col_stop)``."""

    strip: int
    block: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.row_stop - self.row_start, self.col_stop - self.col_start)

    def slice(self) -> Tuple[slice, slice]:
        """Return the ``(row_slice, col_slice)`` indexing this region."""
        return (slice(self.row_start, self.row_stop), slice(self.col_start, self.col_stop))


@dataclass(frozen=True)
class BlockGrid:
    """A ``num_row_strips × num_col_blocks`` partition of an ``(rows, cols)``
    matrix.

    Every strip/block is a contiguous range; extents that do not divide
    evenly are spread as equally as possible (sizes differ by at most one).
    """

    rows: int
    cols: int
    num_row_strips: int
    num_col_blocks: int

    def __post_init__(self) -> None:
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")
        check_positive_int(self.num_row_strips, "num_row_strips")
        check_positive_int(self.num_col_blocks, "num_col_blocks")
        if self.num_row_strips > self.rows:
            raise ConfigError(
                f"num_row_strips ({self.num_row_strips}) exceeds rows ({self.rows})"
            )
        if self.num_col_blocks > self.cols:
            raise ConfigError(
                f"num_col_blocks ({self.num_col_blocks}) exceeds cols ({self.cols})"
            )

    # -- geometry -------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def num_blocks(self) -> int:
        return self.num_row_strips * self.num_col_blocks

    def row_bounds(self) -> List[Tuple[int, int]]:
        """Row ranges ``[(start, stop), ...]`` of each strip."""
        return _bounds(self.rows, self.num_row_strips)

    def col_bounds(self) -> List[Tuple[int, int]]:
        """Column ranges ``[(start, stop), ...]`` of each block column."""
        return _bounds(self.cols, self.num_col_blocks)

    def regions(self) -> Iterator[BlockRegion]:
        """Iterate all block regions in (strip, block) row-major order."""
        for strip, (r0, r1) in enumerate(self.row_bounds()):
            for block, (c0, c1) in enumerate(self.col_bounds()):
                yield BlockRegion(strip, block, r0, r1, c0, c1)

    def region(self, strip: int, block: int) -> BlockRegion:
        """Return a specific region by strip and block index."""
        r0, r1 = self.row_bounds()[strip]
        c0, c1 = self.col_bounds()[block]
        return BlockRegion(strip, block, r0, r1, c0, c1)

    def strip_of_row(self, row: int) -> int:
        """Return the strip index containing global row ``row``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} outside [0, {self.rows})")
        for strip, (r0, r1) in enumerate(self.row_bounds()):
            if r0 <= row < r1:
                return strip
        raise AssertionError("unreachable: bounds cover all rows")

    def block_of_col(self, col: int) -> int:
        """Return the block-column index containing global column ``col``."""
        if not 0 <= col < self.cols:
            raise IndexError(f"col {col} outside [0, {self.cols})")
        for block, (c0, c1) in enumerate(self.col_bounds()):
            if c0 <= col < c1:
                return block
        raise AssertionError("unreachable: bounds cover all cols")

    def validate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Check that ``matrix`` matches this grid's shape and return it."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.rows, self.cols):
            raise ConfigError(
                f"matrix shape {matrix.shape} does not match grid {self.shape}"
            )
        return matrix


def grid_for(matrix: np.ndarray, num_row_strips: int, num_col_blocks: int) -> BlockGrid:
    """Build a :class:`BlockGrid` matching ``matrix``'s shape."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ConfigError(f"expected a 2-D matrix, got shape {matrix.shape}")
    return BlockGrid(matrix.shape[0], matrix.shape[1], num_row_strips, num_col_blocks)
