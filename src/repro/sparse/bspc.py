"""BSPC — Block-based Structured Pruning Compact storage format.

Section IV-B(c) of the paper: after BSP pruning, the surviving weights of
each block live only in certain rows and columns of that block, so instead
of one column index per nonzero (CSR), BSPC stores

* per row strip: the list of surviving (unpruned) global row indices,
* per block within the strip: the list of surviving global column indices,
* per block: a dense value panel of shape ``(kept_rows, kept_cols)``,
* optionally, the row permutation produced by the compiler's matrix-reorder
  pass, so the kernel can match input features to reordered rows.

Index storage is therefore proportional to ``kept_rows + kept_cols`` per
block instead of ``nnz`` — the memory-footprint reduction the paper credits
for alleviating the memory-bound regime of RNN inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SparsityError
from repro.kernels.plans import PlanCacheMixin
from repro.sparse.blocks import BlockGrid
from repro.utils.validation import check_2d


@dataclass
class BSPCBlock:
    """One block's payload: surviving column indices + dense value panel."""

    kept_cols: np.ndarray  # global column indices, sorted
    panel: np.ndarray  # (kept_rows_in_strip, len(kept_cols))

    def __post_init__(self) -> None:
        self.kept_cols = np.asarray(self.kept_cols, dtype=np.int64)
        self.panel = np.asarray(self.panel, dtype=np.float64)
        if self.panel.ndim != 2:
            raise SparsityError(f"panel must be 2-D, got {self.panel.shape}")
        if self.panel.shape[1] != len(self.kept_cols):
            raise SparsityError(
                f"panel has {self.panel.shape[1]} columns but "
                f"{len(self.kept_cols)} kept_cols"
            )


@dataclass
class BSPCStrip:
    """One row strip: surviving row indices + one block payload per block."""

    kept_rows: np.ndarray  # global row indices, sorted
    blocks: List[BSPCBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kept_rows = np.asarray(self.kept_rows, dtype=np.int64)


@dataclass
class BSPCMatrix(PlanCacheMixin):
    """A matrix stored in the BSPC format.

    Build with :meth:`from_dense`; the constructor validates structural
    consistency (panel shapes vs. kept rows/cols).  Compute dispatches
    through :mod:`repro.kernels`; reassigning a structural field drops
    the cached execution plan (see :class:`PlanCacheMixin`).
    """

    grid: BlockGrid
    strips: List[BSPCStrip]
    row_permutation: Optional[np.ndarray] = None

    #: Registry op prefix used by :func:`repro.kernels.spmv`/``spmm``.
    kernel_prefix = "bspc"

    _STRUCTURAL_FIELDS = frozenset({"grid", "strips", "row_permutation"})

    def __post_init__(self) -> None:
        if len(self.strips) != self.grid.num_row_strips:
            raise SparsityError(
                f"expected {self.grid.num_row_strips} strips, got {len(self.strips)}"
            )
        for strip in self.strips:
            if len(strip.blocks) != self.grid.num_col_blocks:
                raise SparsityError(
                    f"every strip needs {self.grid.num_col_blocks} blocks, "
                    f"got {len(strip.blocks)}"
                )
            for block in strip.blocks:
                if block.panel.shape[0] != len(strip.kept_rows):
                    raise SparsityError(
                        f"panel rows {block.panel.shape[0]} != kept rows "
                        f"{len(strip.kept_rows)}"
                    )
        if self.row_permutation is not None:
            perm = np.asarray(self.row_permutation, dtype=np.int64)
            # O(n) permutation check: right length, in range, no repeats.
            if (
                perm.shape != (self.grid.rows,)
                or perm.size
                and (
                    perm.min() < 0
                    or perm.max() >= self.grid.rows
                    or np.bincount(perm, minlength=self.grid.rows).max() > 1
                )
            ):
                raise SparsityError("row_permutation must be a permutation of rows")
            self.row_permutation = perm

    # -- construction -----------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        grid: BlockGrid,
        row_permutation: Optional[np.ndarray] = None,
    ) -> "BSPCMatrix":
        """Encode a (pruned) dense matrix.

        Surviving rows are those with any nonzero in the strip; surviving
        columns of a block are those with any nonzero inside the block
        region restricted to surviving rows.  Encoding any matrix is legal —
        a poorly block-structured matrix simply yields panels padded with
        explicit zeros (its :meth:`fill` drops below 1), which is how the
        compiler quantifies how BSP-friendly a sparsity pattern is.
        """
        dense = grid.validate_matrix(check_2d(dense, "dense"))
        strips: List[BSPCStrip] = []
        for r0, r1 in grid.row_bounds():
            strip_rows = dense[r0:r1]
            local_kept = np.flatnonzero(np.any(strip_rows != 0.0, axis=1))
            kept_rows = local_kept + r0
            blocks: List[BSPCBlock] = []
            for c0, c1 in grid.col_bounds():
                region = strip_rows[local_kept][:, c0:c1]
                local_cols = np.flatnonzero(np.any(region != 0.0, axis=0))
                kept_cols = local_cols + c0
                panel = region[:, local_cols]
                blocks.append(BSPCBlock(kept_cols=kept_cols, panel=panel))
            strips.append(BSPCStrip(kept_rows=kept_rows, blocks=blocks))
        return cls(grid=grid, strips=strips, row_permutation=row_permutation)

    # -- conversion ------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Expand back to a dense matrix (exact round trip of from_dense)."""
        dense = np.zeros(self.grid.shape)
        for strip in self.strips:
            for block in strip.blocks:
                if strip.kept_rows.size and block.kept_cols.size:
                    dense[np.ix_(strip.kept_rows, block.kept_cols)] = block.panel
        return dense

    # -- queries -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of true nonzeros stored in the panels."""
        return int(sum(np.count_nonzero(b.panel) for s in self.strips for b in s.blocks))

    @property
    def stored_values(self) -> int:
        """Number of stored panel entries (>= nnz; zeros are padded)."""
        return int(sum(b.panel.size for s in self.strips for b in s.blocks))

    def fill(self) -> float:
        """Fraction of stored entries that are true nonzeros (1.0 = ideal).

        BSP-pruned matrices achieve fill 1.0 because pruning removes whole
        rows/columns per block; irregular patterns pad zeros and score lower.
        """
        stored = self.stored_values
        return self.nnz / stored if stored else 1.0

    def kept_row_indices(self) -> np.ndarray:
        """Sorted global indices of all surviving rows."""
        parts = [s.kept_rows for s in self.strips if s.kept_rows.size]
        return np.sort(np.concatenate(parts)) if parts else np.zeros(0, dtype=np.int64)

    def unique_col_indices(self) -> np.ndarray:
        """Sorted global indices of columns read by at least one block."""
        parts = [b.kept_cols for s in self.strips for b in s.blocks if b.kept_cols.size]
        return np.unique(np.concatenate(parts)) if parts else np.zeros(0, dtype=np.int64)

    # -- compute ---------------------------------------------------------
    def spmv(self, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
        """Matrix × vector using only the stored panels.

        This is the computation pattern the mobile kernels execute: gather
        the input elements a block needs, multiply the dense panel,
        scatter-accumulate into surviving output rows.  Dispatches through
        :mod:`repro.kernels`; the default backend packs all panels into one
        batched GEMM at plan-build time.
        """
        from repro import kernels

        x = np.asarray(x)
        if x.shape != (self.grid.cols,):
            raise SparsityError(f"x must be ({self.grid.cols},), got {x.shape}")
        return kernels.spmv(self, x, backend=backend)

    def spmm(self, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
        """Matrix × dense matrix; columns of ``x`` are independent inputs.

        The batched counterpart of :meth:`spmv` (one gather + batched panel
        GEMM for the whole batch), which is what batched inference uses.
        """
        from repro import kernels

        x = check_2d(x, "x")
        if x.shape[0] != self.grid.cols:
            raise SparsityError(
                f"inner dimensions disagree: {self.grid.shape} @ {x.shape}"
            )
        return kernels.spmm(self, x, backend=backend)

    # -- storage model ----------------------------------------------------
    def nbytes(self, value_bytes: int = 2, index_bytes: int = 2) -> int:
        """Model the stored size.

        values: ``stored_values * value_bytes``;
        metadata: per-strip kept-row indices + per-block kept-column indices
        + a fixed 8-byte header per block (panel dims) — all the kernel
        needs; no per-nonzero index is ever stored.  The reorder permutation,
        when present, costs one index per matrix row.
        """
        total = self.stored_values * value_bytes
        for strip in self.strips:
            total += len(strip.kept_rows) * index_bytes
            for block in strip.blocks:
                total += len(block.kept_cols) * index_bytes + 8
        if self.row_permutation is not None:
            total += len(self.row_permutation) * index_bytes
        return total
