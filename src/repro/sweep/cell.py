"""One sweep cell: prune → ADMM retrain → evaluate → save_plan.

A cell runs in its own forked process so a crash (injected or real)
costs exactly one cell-attempt, never the orchestrator.  All of a
cell's durable state lives in its directory under the sweep state dir::

    <state_dir>/cells/<cell-name>/
        checkpoint.npz   atomic checksummed training checkpoint
        plan.npz         the compiled artifact (save_plan format)
        result.json      written atomically on success — its presence
                         with valid content *is* cell completion
        error.json       best-effort diagnostics for a typed failure

Restartability falls out of :func:`repro.training.run_checkpointed`: a
re-spawned attempt finds the previous attempt's checkpoint and resumes
mid-epoch, bit-identically.  The recorded ``weights_sha256`` and loss
curve are what the ``--expect-exact`` gate compares between a clean and
a chaos-resumed sweep.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Optional

from repro.engine.plan import compile_model
from repro.engine.artifact import save_plan
from repro.errors import ReproError
from repro.pruning.bsp import BSPPruner
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig
from repro.training.checkpoint import (
    CheckpointConfig,
    load_training_checkpoint,
    run_checkpointed,
)
from repro.training.distributed import DistConfig, DistributedTrainer
from repro.utils.atomic_write import atomic_write_json, content_checksum
from repro.utils.faults import FaultConfig, FaultInjector
from repro.utils.rng import derive_seed

RESULT_FILE = "result.json"
PLAN_FILE = "plan.npz"
CHECKPOINT_FILE = "checkpoint.npz"
ERROR_FILE = "error.json"

#: Keys a result.json must carry to count as a completed cell.
_REQUIRED_RESULT_KEYS = ("cell", "per", "loss_curve", "weights_sha256")


def cell_dir(state_dir: Path, cell_name: str) -> Path:
    return Path(state_dir) / "cells" / cell_name


def load_cell_result(directory: Path) -> Optional[Dict]:
    """The cell's result if it completed (valid ``result.json``), else None."""
    path = Path(directory) / RESULT_FILE
    try:
        with open(path, "r", encoding="utf-8") as handle:
            result = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(result, dict):
        return None
    if any(key not in result for key in _REQUIRED_RESULT_KEYS):
        return None
    return result


def run_cell(config, cell, cell_index: int, fault: Optional[FaultConfig] = None) -> Dict:
    """Execute one cell to completion in the current process.

    Resumes from the cell's checkpoint when one exists.  Returns the
    result dict (also written atomically to ``result.json``).
    """
    directory = cell_dir(config.state_dir, cell.name)
    directory.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(fault)

    train_set, test_set = make_corpus(
        config.num_train, config.num_test, SynthConfig(), seed=config.seed
    )
    model = GRUAcousticModel(
        AcousticModelConfig(hidden_size=config.hidden_size), rng=config.seed
    )
    dense = load_training_checkpoint(
        Path(config.state_dir) / "dense" / CHECKPOINT_FILE
    )
    model.load_state_dict(dense.model_state())

    trainer_config = TrainerConfig(
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        seed=derive_seed(config.seed, cell_index),
    )
    if config.train_workers > 1:
        trainer = DistributedTrainer(
            model,
            train_set,
            test_set,
            trainer_config,
            DistConfig(num_workers=config.train_workers),
        )
    else:
        trainer = Trainer(model, train_set, test_set, trainer_config)
    pruner = BSPPruner(
        model.prunable_parameters(),
        cell.bsp_config(
            rho=config.rho,
            step1_admm_epochs=config.admm_epochs,
            step1_retrain_epochs=config.retrain_epochs,
            step2_admm_epochs=config.admm_epochs,
            step2_retrain_epochs=config.retrain_epochs,
        ),
    )
    try:
        epochs_run = run_checkpointed(
            trainer,
            pruner,
            CheckpointConfig(
                path=directory / CHECKPOINT_FILE,
                every_steps=config.checkpoint_every_steps,
            ),
            max_epochs=config.total_cell_epochs + 2,
            extra={"cell": cell.to_dict(), "cell_index": cell_index},
            on_step=lambda _global_step: injector.on_step(),
        )
        evaluation = trainer.evaluate()
        plan = compile_model(model, scheme=cell.scheme)
        save_plan(directory / PLAN_FILE, plan)
    finally:
        if isinstance(trainer, DistributedTrainer):
            trainer.close()
    masks = pruner.masks
    result = {
        "cell": cell.to_dict(),
        "name": cell.name,
        "cell_index": cell_index,
        "per": float(evaluation.per),
        "frame_accuracy": float(evaluation.frame_accuracy),
        "loss_curve": [float(x) for x in trainer.log.losses],
        "epochs": len(trainer.log.losses),
        "epochs_this_attempt": int(epochs_run),
        "measured_rate": float(masks.compression_rate()) if masks else 1.0,
        "params_kept": int(masks.total_nnz()) if masks else 0,
        "weights_sha256": content_checksum({}, model.state_dict()),
        "trainer_seed": trainer_config.seed,
        "train_workers": int(config.train_workers),
    }
    atomic_write_json(directory / RESULT_FILE, result)
    return result


def cell_process_main(config, cell, cell_index: int, fault) -> None:
    """Child-process entry: run the cell, exit 0/1, record typed errors."""
    directory = cell_dir(config.state_dir, cell.name)
    try:
        run_cell(config, cell, cell_index, fault)
    except ReproError as exc:
        try:
            directory.mkdir(parents=True, exist_ok=True)
            atomic_write_json(
                directory / ERROR_FILE,
                {"error": type(exc).__name__, "message": str(exc)},
            )
        except OSError:
            pass
        sys.exit(1)
    sys.exit(0)


__all__ = [
    "CHECKPOINT_FILE",
    "ERROR_FILE",
    "PLAN_FILE",
    "RESULT_FILE",
    "cell_dir",
    "cell_process_main",
    "load_cell_result",
    "run_cell",
]
