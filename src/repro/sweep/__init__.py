"""Fault-tolerant prune→retrain sweeps over sparsity × scheme × blocks.

The sweep package reproduces the *population* behind the paper's
Table 1: a grid of BSP prune→retrain cells forked from one dense
baseline, each trained, evaluated, compiled, and published into a
:class:`~repro.engine.registry.PlanRegistry` with full lineage.  The
robustness contract — atomic checksummed checkpoints, seeded chaos,
retry budgets, straggler timeouts, and **bit-exact** resume — lives in
:mod:`repro.sweep.orchestrator`; see ``docs/sweep.md``.

Quickstart::

    from repro.sweep import SweepConfig, run_sweep

    result = run_sweep(
        SweepConfig(
            state_dir="sweep-state",
            rates=((2.0, 1.25), (4.0, 1.25)),
            schemes=(None, "int8"),
            workers=2,
        ),
        chaos=True,   # crash every cell's first attempt, then recover
    )
    print(result.summary_table())
"""

from repro.sweep.cell import load_cell_result, run_cell
from repro.sweep.grid import SCHEMES, SweepCell, build_grid
from repro.sweep.orchestrator import (
    CellOutcome,
    SweepConfig,
    SweepResult,
    chaos_fault_for,
    run_sweep,
)

__all__ = [
    "CellOutcome",
    "SCHEMES",
    "SweepCell",
    "SweepConfig",
    "SweepResult",
    "build_grid",
    "chaos_fault_for",
    "load_cell_result",
    "run_cell",
    "run_sweep",
]
