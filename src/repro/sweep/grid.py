"""The sweep grid: sparsity × quantization scheme × block size.

Table 1 of the paper is a *population* of models — each row a
(compression rate, scheme) point trained through the same BSP
prune→retrain recipe.  :class:`SweepCell` is one such point plus the
block grid it prunes under; :func:`build_grid` enumerates the cross
product in deterministic order (the order is part of the sweep's
contract: cell indices seed per-cell fault plans and trainer shuffles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.pruning.bsp import BSPConfig

#: Quantization schemes a cell's plan can compile under.
SCHEMES = (None, "fp16", "int8")


@dataclass(frozen=True)
class SweepCell:
    """One grid point: BSP rates + block grid + compile scheme."""

    col_rate: float
    row_rate: float
    scheme: Optional[str]
    num_row_strips: int = 2
    num_col_blocks: int = 2

    def __post_init__(self) -> None:
        if self.col_rate < 1.0 or self.row_rate < 1.0:
            raise ConfigError(
                f"compression rates must be >= 1, got "
                f"col={self.col_rate}, row={self.row_rate}"
            )
        if self.scheme not in SCHEMES:
            raise ConfigError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}"
            )
        if self.num_row_strips < 1 or self.num_col_blocks < 1:
            raise ConfigError("block grid dimensions must be >= 1")

    @property
    def name(self) -> str:
        """Registry-safe cell identifier, e.g. ``c8.0-r1.25-int8-g4x4``."""
        scheme = self.scheme or "float"
        return (
            f"c{self.col_rate:g}-r{self.row_rate:g}-{scheme}"
            f"-g{self.num_row_strips}x{self.num_col_blocks}"
        )

    @property
    def nominal_compression(self) -> float:
        return self.col_rate * self.row_rate

    def bsp_config(
        self,
        *,
        rho: float,
        step1_admm_epochs: int,
        step1_retrain_epochs: int,
        step2_admm_epochs: int,
        step2_retrain_epochs: int,
    ) -> BSPConfig:
        return BSPConfig(
            col_rate=self.col_rate,
            row_rate=self.row_rate,
            num_row_strips=self.num_row_strips,
            num_col_blocks=self.num_col_blocks,
            rho=rho,
            step1_admm_epochs=step1_admm_epochs,
            step1_retrain_epochs=step1_retrain_epochs,
            step2_admm_epochs=step2_admm_epochs,
            step2_retrain_epochs=step2_retrain_epochs,
        )

    def to_dict(self) -> dict:
        return {
            "col_rate": self.col_rate,
            "row_rate": self.row_rate,
            "scheme": self.scheme,
            "num_row_strips": self.num_row_strips,
            "num_col_blocks": self.num_col_blocks,
        }


def build_grid(
    rates: Sequence[Tuple[float, float]],
    schemes: Sequence[Optional[str]],
    blocks: Sequence[Tuple[int, int]] = ((2, 2),),
) -> List[SweepCell]:
    """Cross product in deterministic (rates → schemes → blocks) order."""
    if not rates or not schemes or not blocks:
        raise ConfigError("sweep grid axes must be non-empty")
    grid = [
        SweepCell(
            col_rate=float(col),
            row_rate=float(row),
            scheme=scheme,
            num_row_strips=int(strips),
            num_col_blocks=int(cols),
        )
        for col, row in rates
        for scheme in schemes
        for strips, cols in blocks
    ]
    names = [cell.name for cell in grid]
    if len(set(names)) != len(names):
        raise ConfigError(f"sweep grid has duplicate cells: {names}")
    return grid


__all__ = ["SCHEMES", "SweepCell", "build_grid"]
