"""Fault-tolerant sweep orchestration over the prune→retrain grid.

:func:`run_sweep` fans a sparsity × scheme × block-size grid across a
bounded pool of forked cell processes.  Each cell trains a BSP
prune→retrain model from a shared dense baseline, evaluates it,
compiles a plan, and records its result atomically (see
:mod:`repro.sweep.cell`).  The orchestrator supplies the robustness
guarantees around that:

* **Crash containment + retries.**  A cell crash (injected or real)
  kills one forked attempt.  The orchestrator re-spawns it up to
  ``retry_budget`` times; the new attempt resumes from the cell's
  atomic checkpoint and — because training RNG is counter-based —
  finishes **bit-identical** to a never-interrupted run.
* **Straggler timeouts.**  A cell that exceeds ``cell_timeout_s`` is
  killed and retried like a crash.
* **Deterministic chaos.**  Under ``chaos=True`` every cell's *first*
  attempt is armed with a seeded :class:`~repro.utils.faults.FaultConfig`
  whose crash step derives from ``(chaos_seed, cell_index)`` — the same
  sweep always crashes at the same steps, so exactness is testable.
* **Resume.**  Re-running the same ``state_dir`` skips cells with a
  valid ``result.json`` and resumes incomplete ones from checkpoint;
  registry publishes are idempotent.

Every finished cell is published into a :class:`PlanRegistry`: the
dense baseline as ``v1`` of the cell's name and the pruned cell plan as
``v2`` with ``parent="v1"`` lineage plus tuning/sweep provenance in
``extra``.

This module deliberately does not import :mod:`repro.eval` (the eval
package's sweep benchmark imports *us*); the Table-1-style summary
renderer is local.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.artifact import load_plan
from repro.engine.plan import compile_model
from repro.engine.registry import PlanRegistry
from repro.errors import ConfigError, SweepError
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig
from repro.sweep.cell import (
    CHECKPOINT_FILE,
    ERROR_FILE,
    PLAN_FILE,
    cell_dir,
    cell_process_main,
    load_cell_result,
)
from repro.sweep.grid import SweepCell, build_grid
from repro.training.checkpoint import CheckpointConfig, run_checkpointed
from repro.utils.atomic_write import atomic_write_json, content_checksum
from repro.utils.faults import CRASH_EXIT_CODE, FaultConfig
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class SweepConfig:
    """The full sweep specification: grid, budget, and training recipe."""

    state_dir: Path
    rates: Sequence[Tuple[float, float]] = ((2.0, 1.25),)
    schemes: Sequence[Optional[str]] = (None,)
    blocks: Sequence[Tuple[int, int]] = ((2, 2),)
    workers: int = 2
    retry_budget: int = 1
    cell_timeout_s: float = 600.0
    chaos_seed: int = 1234
    registry_dir: Optional[Path] = None
    # Training recipe shared by the dense baseline and every cell.
    seed: int = 0
    hidden_size: int = 24
    num_train: int = 12
    num_test: int = 6
    learning_rate: float = 3e-3
    batch_size: int = 4
    dense_epochs: int = 2
    admm_epochs: int = 1
    retrain_epochs: int = 1
    rho: float = 1e-2
    checkpoint_every_steps: int = 1
    train_workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.retry_budget < 0:
            raise ConfigError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.cell_timeout_s <= 0:
            raise ConfigError(
                f"cell_timeout_s must be positive, got {self.cell_timeout_s}"
            )
        if self.train_workers < 1:
            raise ConfigError(
                f"train_workers must be >= 1, got {self.train_workers}"
            )
        if min(self.dense_epochs, self.admm_epochs, self.retrain_epochs) < 1:
            raise ConfigError("epoch counts must be >= 1")

    @property
    def total_cell_epochs(self) -> int:
        """Epochs one cell runs through all four BSP phases."""
        return 2 * (self.admm_epochs + self.retrain_epochs)

    @property
    def steps_per_epoch(self) -> int:
        return math.ceil(self.num_train / self.batch_size)

    def grid(self) -> List[SweepCell]:
        return build_grid(self.rates, self.schemes, self.blocks)

    def registry_root(self) -> Path:
        return Path(self.registry_dir or Path(self.state_dir) / "registry")


@dataclass
class CellOutcome:
    """What happened to one grid cell across all of its attempts."""

    cell: SweepCell
    index: int
    status: str = "pending"  # -> "ok" | "cached" | "failed"
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    result: Optional[Dict] = None
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepResult:
    """Every cell outcome plus the dense baseline it forked from."""

    config: SweepConfig
    dense: Dict
    outcomes: List[CellOutcome]

    @property
    def completed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.completed]

    @property
    def failed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def summary_table(self) -> str:
        """Table-1-style text summary of the sweep population."""
        header = (
            "cell", "rate", "measured", "scheme", "PER%", "kept",
            "tries", "status",
        )
        rows = [header]
        for outcome in self.outcomes:
            cell, result = outcome.cell, outcome.result or {}
            rows.append((
                cell.name,
                f"{cell.nominal_compression:g}x",
                f"{result.get('measured_rate', float('nan')):.2f}x"
                if result else "-",
                cell.scheme or "float",
                f"{result.get('per', float('nan')):.2f}" if result else "-",
                str(result.get("params_kept", "-")),
                str(outcome.attempts),
                outcome.status,
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(row)).rstrip())
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        dense_per = self.dense.get("per", float("nan"))
        lines.append("")
        lines.append(
            f"dense baseline PER {dense_per:.2f}%  |  "
            f"{len(self.completed)}/{len(self.outcomes)} cells complete"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "dense": dict(self.dense),
            "cells": [
                {
                    "name": o.cell.name,
                    "index": o.index,
                    "status": o.status,
                    "attempts": o.attempts,
                    "failures": list(o.failures),
                    "error": o.error,
                    "result": o.result,
                }
                for o in self.outcomes
            ],
        }


def chaos_fault_for(config: SweepConfig, cell_index: int) -> FaultConfig:
    """The deterministic first-attempt crash plan for ``cell_index``.

    The crash lands on a global step in ``[1, total_steps - 1]`` so a
    checkpoint always precedes it and work always remains after it —
    the resume path is genuinely exercised, never trivially skipped.
    """
    total_steps = config.total_cell_epochs * config.steps_per_epoch
    step = 1 + derive_seed(config.chaos_seed, cell_index) % max(total_steps - 1, 1)
    # ``crash_after_chunks=k`` fires on the (k+1)-th on_step call, i.e.
    # just after optimizer step k+1 completed and was checkpointed.
    return FaultConfig(crash_after_chunks=step - 1, target_worker=None)


def _train_dense_baseline(config: SweepConfig) -> Tuple[GRUAcousticModel, Dict]:
    """Train (or resume) the shared dense baseline, parent-side."""
    dense_dir = Path(config.state_dir) / "dense"
    train_set, test_set = make_corpus(
        config.num_train, config.num_test, SynthConfig(), seed=config.seed
    )
    model = GRUAcousticModel(
        AcousticModelConfig(hidden_size=config.hidden_size), rng=config.seed
    )
    trainer = Trainer(
        model,
        train_set,
        test_set,
        TrainerConfig(
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            seed=config.seed,
        ),
    )
    run_checkpointed(
        trainer,
        None,
        CheckpointConfig(
            path=dense_dir / CHECKPOINT_FILE,
            every_steps=config.checkpoint_every_steps,
        ),
        max_epochs=config.dense_epochs,
    )
    evaluation = trainer.evaluate()
    dense = {
        "per": float(evaluation.per),
        "frame_accuracy": float(evaluation.frame_accuracy),
        "loss_curve": [float(x) for x in trainer.log.losses],
        "weights_sha256": content_checksum({}, model.state_dict()),
        "epochs": config.dense_epochs,
        "seed": config.seed,
    }
    atomic_write_json(dense_dir / "result.json", dense)
    return model, dense


def _classify_exit(exitcode: Optional[int], directory: Path) -> str:
    if exitcode == CRASH_EXIT_CODE:
        return "crash (injected)"
    if exitcode == 1:
        try:
            with open(directory / ERROR_FILE, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            return f"{info.get('error', 'error')}: {info.get('message', '')}"
        except (OSError, ValueError):
            return "typed error (no diagnostics written)"
    return f"crash (exit code {exitcode})"


class _RunningCell:
    """One in-flight forked cell attempt."""

    def __init__(self, outcome: CellOutcome, process, started: float) -> None:
        self.outcome = outcome
        self.process = process
        self.started = started


def _run_cells(
    config: SweepConfig, outcomes: List[CellOutcome], chaos: bool
) -> None:
    ctx = multiprocessing.get_context("fork")
    pending = [o for o in outcomes if o.status == "pending"]
    running: List[_RunningCell] = []

    def _spawn(outcome: CellOutcome) -> None:
        fault = None
        if chaos and outcome.attempts == 0:
            fault = chaos_fault_for(config, outcome.index)
        outcome.attempts += 1
        process = ctx.Process(
            target=cell_process_main,
            args=(config, outcome.cell, outcome.index, fault),
            daemon=True,
        )
        process.start()
        running.append(_RunningCell(outcome, process, time.monotonic()))

    def _finish(run: _RunningCell, failure: Optional[str]) -> None:
        outcome = run.outcome
        directory = cell_dir(config.state_dir, outcome.cell.name)
        if failure is None:
            result = load_cell_result(directory)
            if result is None:
                failure = "exited cleanly without a valid result.json"
            else:
                outcome.status = "ok"
                outcome.result = result
                return
        outcome.failures.append(failure)
        if len(outcome.failures) > config.retry_budget:
            outcome.status = "failed"
            outcome.error = (
                f"cell {outcome.cell.name} failed permanently after "
                f"{outcome.attempts} attempt(s) "
                f"(retry budget {config.retry_budget}): {failure}"
            )
        else:
            pending.append(outcome)

    while pending or running:
        while pending and len(running) < config.workers:
            _spawn(pending.pop(0))
        time.sleep(0.02)
        still_running: List[_RunningCell] = []
        for run in running:
            if run.process.is_alive():
                if time.monotonic() - run.started > config.cell_timeout_s:
                    run.process.kill()
                    run.process.join()
                    _finish(
                        run,
                        f"straggler killed after {config.cell_timeout_s:g}s",
                    )
                else:
                    still_running.append(run)
                continue
            run.process.join()
            exitcode = run.process.exitcode
            directory = cell_dir(config.state_dir, run.outcome.cell.name)
            failure = None if exitcode == 0 else _classify_exit(exitcode, directory)
            _finish(run, failure)
        running = still_running


def _publish_outcomes(
    config: SweepConfig,
    dense_model: GRUAcousticModel,
    dense: Dict,
    outcomes: List[CellOutcome],
) -> None:
    """Idempotently publish dense (v1) + cell plan (v2, parent v1)."""
    registry = PlanRegistry(config.registry_root())
    dense_plan = None
    for outcome in outcomes:
        if not outcome.completed or outcome.result is None:
            continue
        name = outcome.cell.name
        versions = registry.versions(name)
        if "v1" not in versions:
            if dense_plan is None:
                dense_plan = compile_model(dense_model, scheme=None)
            registry.publish(
                name,
                dense_plan,
                version=1,
                extra={
                    "role": "dense-baseline",
                    "per": dense["per"],
                    "weights_sha256": dense["weights_sha256"],
                    "sweep_seed": config.seed,
                },
            )
        if "v2" not in versions:
            plan = load_plan(
                cell_dir(config.state_dir, name) / PLAN_FILE
            )
            registry.publish(
                name,
                plan,
                version=2,
                parent=1,
                extra={
                    "role": "sweep-cell",
                    "cell": outcome.cell.to_dict(),
                    "cell_index": outcome.index,
                    "per": outcome.result["per"],
                    "measured_rate": outcome.result["measured_rate"],
                    "params_kept": outcome.result["params_kept"],
                    "weights_sha256": outcome.result["weights_sha256"],
                    "attempts": outcome.attempts,
                    "sweep_seed": config.seed,
                },
            )
        outcome.result.setdefault("published", f"{name}/v2")


def run_sweep(
    config: SweepConfig, *, chaos: bool = False, strict: bool = True
) -> SweepResult:
    """Run (or resume) the full sweep; returns every cell's outcome.

    ``chaos=True`` arms each cell's first attempt with its deterministic
    crash plan.  ``strict=True`` raises :class:`~repro.errors.SweepError`
    if any cell fails permanently; ``strict=False`` records the failure
    and keeps going (the chaos pass of ``--chaos --resume`` uses this
    with ``retry_budget=0`` to leave cells mid-flight on purpose).
    """
    state_dir = Path(config.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    dense_model, dense = _train_dense_baseline(config)

    outcomes = [
        CellOutcome(cell=cell, index=index)
        for index, cell in enumerate(config.grid())
    ]
    # Resume: a valid result.json *is* completion — skip those cells.
    for outcome in outcomes:
        cached = load_cell_result(cell_dir(state_dir, outcome.cell.name))
        if cached is not None:
            outcome.status = "cached"
            outcome.result = cached

    _run_cells(config, outcomes, chaos)
    _publish_outcomes(config, dense_model, dense, outcomes)

    result = SweepResult(config=config, dense=dense, outcomes=outcomes)
    atomic_write_json(state_dir / "sweep.json", result.to_dict())
    if strict and result.failed:
        names = ", ".join(o.cell.name for o in result.failed)
        raise SweepError(
            f"{len(result.failed)} sweep cell(s) failed permanently: {names}. "
            f"First error: {result.failed[0].error}"
        )
    return result


__all__ = [
    "CellOutcome",
    "SweepConfig",
    "SweepResult",
    "chaos_fault_for",
    "run_sweep",
]
