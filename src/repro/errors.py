"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration mistakes from numerical problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array has an incompatible or unexpected shape."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""


class GradientError(ReproError, RuntimeError):
    """Autograd misuse: e.g. backward through a non-scalar without seed."""


class SparsityError(ReproError, ValueError):
    """A sparse format or pruning mask is malformed or inconsistent."""


class CompilationError(ReproError, RuntimeError):
    """The compiler could not lower a model to an executable plan."""


class SimulationError(ReproError, RuntimeError):
    """The hardware simulator was asked to execute an invalid plan."""


class KernelError(ReproError, RuntimeError):
    """A kernel op/backend lookup failed or a kernel was misused."""


class CompileBackendError(KernelError):
    """The compiled C kernel backend could not be built or loaded.

    Raised (and recorded once) when no C compiler is available, the build
    fails, or the built library does not pass the load-time sanity probe.
    The backend is then simply absent from ``kernels.backends()`` and
    everything keeps running on the numpy backend.
    """


class StreamError(ReproError, RuntimeError):
    """A streaming session/frontend was used after finish or out of order."""


class OverloadError(StreamError):
    """Admission control shed the request: the serving fabric is saturated.

    Raised instead of queueing when accepting the session/chunk would
    push a worker past its bounded queue and break the
    ``max_wait_frames`` latency contract.  The request was *not*
    accepted; the caller may retry after draining.
    """


class SwapError(StreamError):
    """A hot-swap was rejected: the candidate plan cannot carry the live
    sessions' recurrent state.

    Raised *before* any live session is touched — a failed swap leaves
    the scheduler (or fabric) serving the incumbent plan unchanged.
    """


class ArtifactError(ReproError, RuntimeError):
    """A compiled-plan artifact is unreadable, truncated, or corrupted."""


class RegistryError(ArtifactError):
    """A registry operation failed: unknown name/version, a duplicate
    publish, a malformed version directory, or a checksum mismatch on
    load.  Subclasses :class:`ArtifactError` so callers guarding
    artifact loads catch registry-resolved loads with the same clause.
    """


class FabricError(ReproError, RuntimeError):
    """The multi-process serving fabric lost a worker it could not recover."""


class TrainingError(ReproError, RuntimeError):
    """The distributed trainer lost a gradient worker it could not recover
    (restart budget exhausted, or a worker died outside any recoverable
    protocol state)."""


class CheckpointError(ArtifactError):
    """A training checkpoint is missing, truncated, corrupted, or does not
    match the model/optimizer it is being restored into.  Subclasses
    :class:`ArtifactError` because checkpoints share the artifact
    discipline (atomic writes, SHA-256 content checksums)."""


class SweepError(ReproError, RuntimeError):
    """A sweep cell failed permanently: its retry budget is exhausted, a
    straggler timeout fired on the final attempt, or its published result
    failed validation."""
