"""Module/Parameter abstractions mirroring the familiar torch.nn layout.

A :class:`Module` owns named :class:`Parameter` objects and child modules,
and offers ``parameters()`` / ``named_parameters()`` traversal plus numpy
``state_dict`` save/load.  Pruning code in :mod:`repro.pruning` targets the
2-D weight parameters exposed through :meth:`Module.named_parameters`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always ``requires_grad=True``."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically via ``__setattr__`` and
    discovered by the traversal helpers.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal --------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters, depth-first."""
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, including self as ''."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- train/eval -------------------------------------------------------
    def train(self) -> "Module":
        """Switch this module (and children) to training mode."""
        object.__setattr__(self, "training", True)
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) to evaluation mode."""
        object.__setattr__(self, "training", False)
        for module in self._modules.values():
            module.eval()
        return self

    # -- gradients ----------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array copy of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values in-place; shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != {param.data.shape}"
                )
            param.data[...] = value

    # -- forward ----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
