"""Checkpointing: save/load models, masks, and metadata as ``.npz``.

A checkpoint bundles a module's ``state_dict``, optionally the pruning
masks that produced it (so a compressed model can be reloaded *and* kept
compressed through further training), and a JSON metadata blob (seeds,
configs, measured accuracy).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.pruning.mask import MaskSet, PruningMask

_PARAM_PREFIX = "param::"
_MASK_PREFIX = "mask::"
_META_KEY = "metadata_json"


def save_checkpoint(
    path,
    model: Module,
    masks: Optional[MaskSet] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``model`` (and optional masks/metadata) to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[_PARAM_PREFIX + name] = value
    if masks is not None:
        for name, mask in masks:
            arrays[_MASK_PREFIX + name] = mask.keep
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(Path(path), **arrays)


def load_checkpoint(
    path, model: Optional[Module] = None
) -> Tuple[Dict[str, np.ndarray], MaskSet, Dict[str, Any]]:
    """Read a checkpoint; optionally load parameters into ``model``.

    Returns ``(state, masks, metadata)``.  When ``model`` is given, its
    parameters are set from the checkpoint and any stored masks are
    re-applied so the sparsity pattern survives the round trip exactly.
    """
    with np.load(Path(path)) as archive:
        state = {
            key[len(_PARAM_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_PARAM_PREFIX)
        }
        masks = MaskSet(
            {
                key[len(_MASK_PREFIX):]: PruningMask(archive[key])
                for key in archive.files
                if key.startswith(_MASK_PREFIX)
            }
        )
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        else:
            metadata = {}
    if model is not None:
        model.load_state_dict(state)
        if len(masks):
            masks.apply_to_params(dict(model.named_parameters()))
    return state, masks, metadata
