"""Post-training quantization.

The paper's mobile GPU kernels run on 16-bit floats ("Our GPU
implementation uses 16-bit floating point", Table II); this module makes
that numerically real rather than just a byte-count in the cost model:

* :func:`quantize_fp16` — round values through IEEE half precision,
* :func:`quantize_int8` / :func:`dequantize_int8` — symmetric per-tensor
  int8 with a power-of-two-free scale (the common mobile deployment
  fallback when fp16 is unavailable),
* :func:`quantize_model` — apply either scheme to every weight of a
  module in place, so PER-after-quantization can be measured directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module


def quantize_fp16(array: np.ndarray) -> np.ndarray:
    """Round ``array`` through IEEE binary16 and back to float64.

    Values outside fp16 range saturate to ±65504 (matching saturating
    mobile kernels) rather than becoming inf.
    """
    array = np.asarray(array, dtype=np.float64)
    clipped = np.clip(array, -65504.0, 65504.0)
    return clipped.astype(np.float16).astype(np.float64)


def quantize_int8(array: np.ndarray) -> Tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization.

    Returns ``(codes, scale)`` with ``codes`` in ``[-127, 127]`` (int8;
    -128 unused for symmetry) and ``value ≈ codes * scale``.
    """
    array = np.asarray(array, dtype=np.float64)
    peak = float(np.max(np.abs(array))) if array.size else 0.0
    if peak == 0.0:
        return np.zeros(array.shape, dtype=np.int8), 1.0
    scale = peak / 127.0
    codes = np.clip(np.round(array / scale), -127, 127).astype(np.int8)
    return codes, scale


def dequantize_int8(codes: np.ndarray, scale: float) -> np.ndarray:
    """Reconstruct float values from int8 codes and their scale."""
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    return codes.astype(np.float64) * scale


def int8_round_trip(array: np.ndarray) -> np.ndarray:
    """Quantize to int8 and back — the simulated-deployment weight values."""
    codes, scale = quantize_int8(array)
    return dequantize_int8(codes, scale)


def quantization_error(array: np.ndarray, scheme: str = "fp16") -> float:
    """RMS quantization error of ``array`` under the given scheme."""
    array = np.asarray(array, dtype=np.float64)
    if scheme == "fp16":
        reconstructed = quantize_fp16(array)
    elif scheme == "int8":
        reconstructed = int8_round_trip(array)
    else:
        raise ConfigError(f"scheme must be 'fp16' or 'int8', got {scheme!r}")
    if array.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((array - reconstructed) ** 2)))


def quantize_model(model: Module, scheme: str = "fp16") -> Dict[str, float]:
    """Quantize every parameter of ``model`` in place.

    Pruned (exactly-zero) weights stay exactly zero under both schemes, so
    sparsity patterns survive quantization.  Returns per-parameter RMS
    quantization error for reporting.
    """
    if scheme not in ("fp16", "int8"):
        raise ConfigError(f"scheme must be 'fp16' or 'int8', got {scheme!r}")
    errors: Dict[str, float] = {}
    for name, param in model.named_parameters():
        original = param.data.copy()
        if scheme == "fp16":
            param.data[...] = quantize_fp16(param.data)
        else:
            param.data[...] = int8_round_trip(param.data)
        errors[name] = float(
            np.sqrt(np.mean((original - param.data) ** 2))
        ) if original.size else 0.0
    return errors
