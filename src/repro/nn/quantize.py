"""Post-training quantization.

The paper's mobile GPU kernels run on 16-bit floats ("Our GPU
implementation uses 16-bit floating point", Table II); this module makes
that numerically real rather than just a byte-count in the cost model:

* :func:`quantize_fp16` — round values through IEEE half precision,
* :func:`quantize_int8` / :func:`dequantize_int8` — symmetric per-tensor
  int8 with a power-of-two-free scale (the common mobile deployment
  fallback when fp16 is unavailable),
* :func:`quantize_model` — apply either scheme to every weight of a
  module in place, so PER-after-quantization can be measured directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kernels.quantized import int8_codes
from repro.nn.module import Module


def quantize_fp16(array: np.ndarray) -> np.ndarray:
    """Round ``array`` through IEEE binary16 and back to float64.

    Values outside fp16 range saturate to ±65504 (matching saturating
    mobile kernels) rather than becoming inf.
    """
    array = np.asarray(array, dtype=np.float64)
    clipped = np.clip(array, -65504.0, 65504.0)
    return clipped.astype(np.float16).astype(np.float64)


def quantize_int8(array: np.ndarray) -> Tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization.

    Returns ``(codes, scale)`` with ``codes`` in ``[-127, 127]`` (int8;
    -128 unused for symmetry) and ``value ≈ codes * scale``.  Delegates
    to :func:`repro.kernels.quantized.int8_codes` — the same codes the
    int8 execution kernels pack, so simulation and deployment agree.
    """
    return int8_codes(array)


def dequantize_int8(codes: np.ndarray, scale: float) -> np.ndarray:
    """Reconstruct float values from int8 codes and their scale."""
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    return codes.astype(np.float64) * scale


def int8_round_trip(array: np.ndarray) -> np.ndarray:
    """Quantize to int8 and back — the simulated-deployment weight values."""
    codes, scale = quantize_int8(array)
    return dequantize_int8(codes, scale)


#: scheme name → round-trip reconstruction (int8 routes through
#: :func:`int8_round_trip`); the single source of truth for what each
#: scheme does to weight values.
_SCHEMES = {"fp16": quantize_fp16, "int8": int8_round_trip}


def _reconstruct(array: np.ndarray, scheme: str) -> np.ndarray:
    if scheme not in _SCHEMES:
        raise ConfigError(f"scheme must be 'fp16' or 'int8', got {scheme!r}")
    return _SCHEMES[scheme](np.asarray(array, dtype=np.float64))


def _rms_error(array: np.ndarray, reconstructed: np.ndarray) -> float:
    if array.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((array - reconstructed) ** 2)))


def quantization_error(array: np.ndarray, scheme: str = "fp16") -> float:
    """RMS quantization error of ``array`` under the given scheme."""
    array = np.asarray(array, dtype=np.float64)
    return _rms_error(array, _reconstruct(array, scheme))


def quantize_model(model: Module, scheme: str = "fp16") -> Dict[str, float]:
    """Quantize every parameter of ``model`` in place.

    Pruned (exactly-zero) weights stay exactly zero under both schemes, so
    sparsity patterns survive quantization.  Returns per-parameter RMS
    quantization error (the same figure :func:`quantization_error`
    reports) — each parameter is reconstructed once and that array both
    yields the error and replaces the values.
    """
    if scheme not in _SCHEMES:
        raise ConfigError(f"scheme must be 'fp16' or 'int8', got {scheme!r}")
    errors: Dict[str, float] = {}
    for name, param in model.named_parameters():
        reconstructed = _reconstruct(param.data, scheme)
        errors[name] = _rms_error(param.data, reconstructed)
        param.data[...] = reconstructed
    return errors
