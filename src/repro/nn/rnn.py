"""Recurrent cells and multi-layer RNN wrappers.

The GRU follows the Cho et al. (2014) formulation used in the paper
(Figure 1):

.. math::

    z_t &= \\sigma(W_z x_t + U_z h_{t-1} + b_z) \\\\
    r_t &= \\sigma(W_r x_t + U_r h_{t-1} + b_r) \\\\
    \\tilde h_t &= \\tanh(W_h x_t + U_h (r_t \\odot h_{t-1}) + b_h) \\\\
    h_t &= (1 - z_t) \\odot h_{t-1} + z_t \\odot \\tilde h_t

Weights are stored as two stacked matrices per cell — ``weight_ih`` of shape
``(3H, D)`` holding :math:`[W_z; W_r; W_h]` and ``weight_hh`` of shape
``(3H, H)`` holding :math:`[U_z; U_r; U_h]` — because those 2-D matrices are
exactly what BSP pruning and the BSPC compiler operate on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, stack
from repro.utils.rng import RngLike, new_rng, spawn_rngs


def _use_fused_kernels(module: Module, *tensors: Tensor) -> bool:
    """True when a sequence forward may take the fused no-grad fast path.

    In eval mode no gradient tape is needed, so the whole sequence runs
    through :mod:`repro.kernels` on raw ndarrays.  Training mode — or any
    input that itself requires grad — keeps a gradient-recording path:
    the fused BPTT node on vectorized backends, the per-timestep Tensor
    tape on the reference backend.
    """
    return not module.training and not any(t.requires_grad for t in tensors)


def _use_fused_grad() -> bool:
    """True when a grad-recording forward should use the fused BPTT node.

    The per-timestep tape is retained as ground truth under the
    ``reference`` kernel backend; every other backend routes each layer
    through one ``gru_sequence_grad``/``lstm_sequence_grad`` kernel call
    recorded as a single autograd node (see :mod:`repro.nn.fused`).
    """
    from repro import kernels

    return kernels.get_default_backend() != "reference"


class GRUCell(Module):
    """Single gated-recurrent-unit cell (one timestep)."""

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        w_ih = np.concatenate(
            [init.xavier_uniform((h, input_size), rng) for _ in range(3)], axis=0
        )
        w_hh = np.concatenate([init.orthogonal((h, h), rng) for _ in range(3)], axis=0)
        self.weight_ih = Parameter(w_ih, name="weight_ih")
        self.weight_hh = Parameter(w_hh, name="weight_hh")
        self.bias_ih = Parameter(init.zeros(3 * h), name="bias_ih")
        self.bias_hh = Parameter(init.zeros(3 * h), name="bias_hh")

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """Advance one timestep; ``x``: (B, D), ``h_prev``: (B, H) → (B, H)."""
        if x.shape[-1] != self.input_size:
            raise ShapeError(
                f"GRUCell expected input size {self.input_size}, got {x.shape}"
            )
        h = self.hidden_size
        gates_x = x.matmul(self.weight_ih.T) + self.bias_ih
        gates_h = h_prev.matmul(self.weight_hh.T) + self.bias_hh
        zx, rx, hx = gates_x[:, :h], gates_x[:, h : 2 * h], gates_x[:, 2 * h :]
        zh, rh, hh = gates_h[:, :h], gates_h[:, h : 2 * h], gates_h[:, 2 * h :]
        z = (zx + zh).sigmoid()
        r = (rx + rh).sigmoid()
        h_tilde = (hx + r * hh).tanh()
        return (1.0 - z) * h_prev + z * h_tilde

    def init_hidden(self, batch_size: int) -> Tensor:
        """Return an all-zero initial hidden state of shape (B, H)."""
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class LSTMCell(Module):
    """Long short-term memory cell, used by the C-LSTM baseline experiments.

    Gate order inside the stacked weights is ``[input, forget, cell, output]``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        w_ih = np.concatenate(
            [init.xavier_uniform((h, input_size), rng) for _ in range(4)], axis=0
        )
        w_hh = np.concatenate([init.orthogonal((h, h), rng) for _ in range(4)], axis=0)
        self.weight_ih = Parameter(w_ih, name="weight_ih")
        self.weight_hh = Parameter(w_hh, name="weight_hh")
        bias = init.zeros(4 * h)
        bias[h : 2 * h] = 1.0  # forget-gate bias of 1 stabilizes early training
        self.bias = Parameter(bias, name="bias")

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Advance one timestep; returns ``(h_t, c_t)``."""
        h_prev, c_prev = state
        hsize = self.hidden_size
        gates = x.matmul(self.weight_ih.T) + h_prev.matmul(self.weight_hh.T) + self.bias
        i = gates[:, :hsize].sigmoid()
        f = gates[:, hsize : 2 * hsize].sigmoid()
        g = gates[:, 2 * hsize : 3 * hsize].tanh()
        o = gates[:, 3 * hsize :].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def init_hidden(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Return all-zero ``(h, c)`` initial state."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class GRU(Module):
    """Multi-layer unidirectional GRU over a full sequence.

    Input is ``(T, B, D)`` (time-major); output is ``(T, B, H)`` hidden
    states of the last layer.  The paper's acoustic model uses two layers.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        rngs = spawn_rngs(new_rng(rng), num_layers)
        for layer_index in range(num_layers):
            in_size = input_size if layer_index == 0 else hidden_size
            cell = GRUCell(in_size, hidden_size, rng=rngs[layer_index])
            setattr(self, f"cell{layer_index}", cell)

    @property
    def cells(self) -> List[GRUCell]:
        return [getattr(self, f"cell{i}") for i in range(self.num_layers)]

    def forward(
        self, x: Tensor, h0: Optional[List[Tensor]] = None
    ) -> Tuple[Tensor, List[Tensor]]:
        """Run the full sequence; returns ``(outputs, final_hiddens)``.

        In eval mode (and with no grad-requiring inputs) each layer runs as
        one fused :func:`repro.kernels.gru_sequence` call.  Training mode
        records gradients: on vectorized backends each layer is a single
        fused-BPTT autograd node (:func:`repro.nn.fused.fused_gru_layer`);
        under the ``reference`` backend the cells unroll per timestep so
        the tape sees every op.
        """
        if x.ndim != 3:
            raise ShapeError(f"GRU expects (T, B, D) input, got {x.shape}")
        if x.shape[-1] != self.input_size:
            raise ShapeError(
                f"GRU expected input size {self.input_size}, got {x.shape}"
            )
        seq_len, batch, _ = x.shape
        hiddens = (
            [cell.init_hidden(batch) for cell in self.cells] if h0 is None else list(h0)
        )
        if len(hiddens) != self.num_layers:
            raise ShapeError(
                f"h0 must have {self.num_layers} layer states, got {len(hiddens)}"
            )
        if _use_fused_kernels(self, x, *hiddens):
            from repro import kernels

            layer_input = x.data
            finals: List[Tensor] = []
            for cell, h_init in zip(self.cells, hiddens):
                layer_input, h_final = kernels.gru_sequence(
                    layer_input,
                    cell.weight_ih.data,
                    cell.weight_hh.data,
                    cell.bias_ih.data,
                    cell.bias_hh.data,
                    h_init.data,
                )
                finals.append(Tensor(h_final))
            return Tensor(layer_input), finals
        if _use_fused_grad():
            from repro.nn.fused import fused_gru_layer

            layer_out = x
            fused_finals: List[Tensor] = []
            for cell, h_init in zip(self.cells, hiddens):
                layer_out = fused_gru_layer(
                    layer_out,
                    cell.weight_ih,
                    cell.weight_hh,
                    cell.bias_ih,
                    cell.bias_hh,
                    h_init,
                )
                fused_finals.append(layer_out[seq_len - 1])
            return layer_out, fused_finals
        outputs: List[Tensor] = []
        for t in range(seq_len):
            layer_input = x[t]
            for layer_index, cell in enumerate(self.cells):
                hiddens[layer_index] = cell(layer_input, hiddens[layer_index])
                layer_input = hiddens[layer_index]
            outputs.append(layer_input)
        return stack(outputs, axis=0), hiddens


class LSTM(Module):
    """Multi-layer unidirectional LSTM over a full sequence (time-major)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        rngs = spawn_rngs(new_rng(rng), num_layers)
        for layer_index in range(num_layers):
            in_size = input_size if layer_index == 0 else hidden_size
            cell = LSTMCell(in_size, hidden_size, rng=rngs[layer_index])
            setattr(self, f"cell{layer_index}", cell)

    @property
    def cells(self) -> List[LSTMCell]:
        return [getattr(self, f"cell{i}") for i in range(self.num_layers)]

    def forward(self, x: Tensor) -> Tensor:
        """Run the full sequence; returns last-layer hidden states (T, B, H).

        Eval mode runs each layer as one fused
        :func:`repro.kernels.lstm_sequence` call (no gradient tape);
        training mode on vectorized backends records one fused-BPTT node
        per layer, falling back to the per-timestep tape under the
        ``reference`` backend.
        """
        if x.ndim != 3:
            raise ShapeError(f"LSTM expects (T, B, D) input, got {x.shape}")
        if x.shape[-1] != self.input_size:
            raise ShapeError(
                f"LSTM expected input size {self.input_size}, got {x.shape}"
            )
        seq_len, batch, _ = x.shape
        if _use_fused_kernels(self, x):
            from repro import kernels

            layer_input = x.data
            zeros = np.zeros((batch, self.hidden_size))
            for cell in self.cells:
                layer_input, _, _ = kernels.lstm_sequence(
                    layer_input,
                    cell.weight_ih.data,
                    cell.weight_hh.data,
                    cell.bias.data,
                    zeros,
                    zeros,
                )
            return Tensor(layer_input)
        if _use_fused_grad():
            from repro.nn.fused import fused_lstm_layer

            layer_out = x
            for cell in self.cells:
                h0, c0 = cell.init_hidden(batch)
                layer_out = fused_lstm_layer(
                    layer_out, cell.weight_ih, cell.weight_hh, cell.bias, h0, c0
                )
            return layer_out
        states = [cell.init_hidden(batch) for cell in self.cells]
        outputs: List[Tensor] = []
        for t in range(seq_len):
            layer_input = x[t]
            for layer_index, cell in enumerate(self.cells):
                h, c = cell(layer_input, states[layer_index])
                states[layer_index] = (h, c)
                layer_input = h
            outputs.append(layer_input)
        return stack(outputs, axis=0)
