"""A minimal numpy neural-network framework (autograd, modules, optimizers).

This subpackage is the training substrate for the RTMobile reproduction:
the paper trains its GRU with PyTorch-Kaldi, which is unavailable offline,
so an equivalent (much smaller) framework is provided here.
"""

from repro.nn import functional, init
from repro.nn.fused import fused_gru_layer, fused_lstm_layer
from repro.nn.data import Batch, DataLoader, Dataset, SequenceExample, collate, train_test_split
from repro.nn.linear import Linear
from repro.nn.quantize import (
    dequantize_int8,
    int8_round_trip,
    quantization_error,
    quantize_fp16,
    quantize_int8,
    quantize_model,
)
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.rnn import GRU, LSTM, GRUCell, LSTMCell
from repro.nn.tensor import Tensor, as_tensor, concatenate, ones, stack, zeros

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "zeros",
    "ones",
    "Module",
    "Parameter",
    "Linear",
    "GRUCell",
    "GRU",
    "LSTMCell",
    "LSTM",
    "SGD",
    "Adam",
    "Optimizer",
    "functional",
    "fused_gru_layer",
    "fused_lstm_layer",
    "init",
    "Dataset",
    "DataLoader",
    "SequenceExample",
    "Batch",
    "collate",
    "train_test_split",
    "save_checkpoint",
    "load_checkpoint",
    "quantize_fp16",
    "quantize_int8",
    "dequantize_int8",
    "int8_round_trip",
    "quantization_error",
    "quantize_model",
]
