"""Weight initialization schemes.

The GRU experiments use orthogonal recurrent weights and Xavier-uniform
input weights, which is the standard recipe for stable gated-RNN training.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, new_rng


def xavier_uniform(shape, rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a 2-D weight ``shape``."""
    rng = new_rng(rng)
    fan_out, fan_in = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape, rng: RngLike = None, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (rows orthonormal for wide matrices)."""
    rng = new_rng(rng)
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape)


def normal(shape, std: float = 0.01, rng: RngLike = None) -> np.ndarray:
    """Gaussian initialization with standard deviation ``std``."""
    rng = new_rng(rng)
    return std * rng.standard_normal(shape)
