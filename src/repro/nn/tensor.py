"""A small reverse-mode automatic-differentiation engine on numpy arrays.

This module provides the :class:`Tensor` class used by the whole training
stack (``repro.nn``).  It supports the operations needed to express and train
GRU/LSTM acoustic models with ADMM-regularized losses:

* elementwise arithmetic with full numpy broadcasting,
* matrix multiplication,
* reductions (``sum``, ``mean``),
* the nonlinearities used by gated RNNs (``sigmoid``, ``tanh``, ``relu``,
  ``exp``, ``log``),
* shape manipulation (``reshape``, ``transpose``, ``__getitem__``,
  ``concatenate``, ``stack``).

Gradients are accumulated into ``Tensor.grad`` by :meth:`Tensor.backward`,
which performs a topological sort of the recorded tape.  Broadcasting is
handled by summing gradient contributions back over broadcast axes
(:func:`_unbroadcast`), which keeps every op's backward rule simple.

The design goal is correctness and clarity, not raw speed: the RTMobile
experiments train small GRUs on synthetic speech, and the mobile-latency
numbers come from the analytic hardware simulator in :mod:`repro.hw`, not
from wall-clock timing of this engine.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GradientError, ShapeError

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it has ``shape``, undoing numpy broadcasting.

    Sums over leading axes that were added by broadcasting and over axes
    whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    # Remove extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast {grad.shape} to {shape}")
    return grad


class Tensor:
    """An n-dimensional array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        If True, operations on this tensor are recorded so that
        :meth:`backward` can compute ``d(output)/d(this)``.
    name:
        Optional label used in error messages and debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item(self)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd tape."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd core
    # ------------------------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        child = Tensor(data)
        if any(p.requires_grad for p in parents):
            child.requires_grad = True
            child._parents = parents
            child._backward = backward
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to 1.0 and is only optional for scalar outputs.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"seed gradient shape {grad.shape} != tensor shape {self.shape}"
            )

        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen and parent.requires_grad:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.data.shape))

        return self._make_child(out_data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(-grad, other_t.data.shape))

        return self._make_child(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.data.shape))

        return self._make_child(out_data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.data.shape))
            if other_t.requires_grad:
                contrib = -grad * self.data / (other_t.data**2)
                other_t._accumulate(_unbroadcast(contrib, other_t.data.shape))

        return self._make_child(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make_child(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting 1-D/2-D operands (no batched matmul)."""
        other_t = as_tensor(other)
        a, b = self.data, other_t.data
        if a.ndim > 2 or b.ndim > 2:
            raise ShapeError(
                f"matmul supports <=2-D operands, got {a.shape} @ {b.shape}"
            )
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            ga: Optional[np.ndarray] = None
            gb: Optional[np.ndarray] = None
            if a.ndim == 1 and b.ndim == 1:
                ga = grad * b
                gb = grad * a
            elif a.ndim == 2 and b.ndim == 2:
                ga = grad @ b.T
                gb = a.T @ grad
            elif a.ndim == 1 and b.ndim == 2:
                ga = grad @ b.T
                gb = np.outer(a, grad)
            else:  # a 2-D, b 1-D
                ga = np.outer(grad, b)
                gb = a.T @ grad
            if self.requires_grad and ga is not None:
                self._accumulate(ga)
            if other_t.requires_grad and gb is not None:
                other_t._accumulate(gb)

        return self._make_child(out_data, (self, other_t), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make_child(np.asarray(out_data), (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = np.asarray(out_data)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(expanded, axis)
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return self._make_child(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return self._make_child(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return self._make_child(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]]
        if len(axes) == 0:
            axes_t = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_t = tuple(axes[0])
        else:
            axes_t = tuple(axes)
        out_data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_t is None:
                self._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(grad.transpose(inverse))

        return self._make_child(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make_child(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (no gradient; return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)


def _raise_item(tensor: Tensor) -> float:
    raise ShapeError(f"item() requires a single-element tensor, got {tensor.shape}")


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concatenate() needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    anchor = tensors[0]
    return anchor._make_child(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("stack() needs at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, moved):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    anchor = tensors[0]
    return anchor._make_child(out_data, tuple(tensors), backward)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    """Return a zero-filled tensor."""
    return Tensor(np.zeros(tuple(shape)), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    """Return a one-filled tensor."""
    return Tensor(np.ones(tuple(shape)), requires_grad=requires_grad)
