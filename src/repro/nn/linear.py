"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, new_rng


class Linear(Module):
    """Affine map ``y = x W^T + b``.

    The weight is stored as ``(out_features, in_features)`` — the same
    row-major layout the pruning and compiler stages operate on, so a pruned
    *row* removes an output neuron and a pruned *column* removes a
    dependence on one input feature.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros(out_features), name="bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out
