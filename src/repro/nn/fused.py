"""Custom autograd nodes for the fused training fast path.

Training-mode ``GRU.forward``/``LSTM.forward`` route each layer through
these helpers instead of unrolling per-timestep ``Tensor`` ops.  A helper
calls the ``gru_sequence_grad``/``lstm_sequence_grad`` kernel (dispatched
through :mod:`repro.kernels`, so the backend decides *how* the BPTT runs),
then records a **single** tape node whose backward is the kernel's fused
BPTT closure.  The tape therefore sees one op per layer instead of
``O(T)`` ops per layer, while gradients still accumulate into exactly the
same leaf tensors (input, weights, biases, initial state) the unrolled
path would touch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor


def fused_gru_layer(
    x: Tensor,
    w_ih: Tensor,
    w_hh: Tensor,
    b_ih: Tensor,
    b_hh: Tensor,
    h0: Tensor,
    backend: Optional[str] = None,
) -> Tensor:
    """One GRU layer over ``(T, B, D)`` as a single autograd node.

    Returns the ``(T, B, H)`` hidden sequence; the final state is its last
    timestep (slice the result to keep gradient connectivity).
    """
    from repro import kernels

    out_data, _, kernel_backward = kernels.gru_sequence_grad(
        x.data, w_ih.data, w_hh.data, b_ih.data, b_hh.data, h0.data, backend=backend
    )
    parents = (x, w_ih, w_hh, b_ih, b_hh, h0)

    def backward(grad: np.ndarray) -> None:
        # Skip the input-gradient GEMM when x is a plain feature tensor.
        grads = kernel_backward(grad, need_dx=x.requires_grad)
        for parent, d in zip(parents, grads):
            if parent.requires_grad:
                parent._accumulate(d)

    return x._make_child(out_data, parents, backward)


def fused_lstm_layer(
    x: Tensor,
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    h0: Tensor,
    c0: Tensor,
    backend: Optional[str] = None,
) -> Tensor:
    """One LSTM layer over ``(T, B, D)`` as a single autograd node."""
    from repro import kernels

    out_data, _, _, kernel_backward = kernels.lstm_sequence_grad(
        x.data, w_ih.data, w_hh.data, bias.data, h0.data, c0.data, backend=backend
    )
    parents = (x, w_ih, w_hh, bias, h0, c0)

    def backward(grad: np.ndarray) -> None:
        grads = kernel_backward(grad, need_dx=x.requires_grad)
        for parent, d in zip(parents, grads):
            if parent.requires_grad:
                parent._accumulate(d)

    return x._make_child(out_data, parents, backward)
