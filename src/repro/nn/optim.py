"""Gradient-descent optimizers.

ADMM-based pruning (Section III-C of the paper) explicitly requires a
modern adaptive optimizer — the paper notes C-LSTM's training pipeline could
not support ADMM for exactly this reason — so :class:`Adam` is the default
throughout the experiments; :class:`SGD` is kept for ablation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                vel = grad if vel is None else self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._steps: Dict[int, int] = {}

    def step(self) -> None:
        """Apply one Adam update using the gradients currently stored.

        Step counts (and thus bias correction) are per-parameter, so a
        parameter that receives its first gradient late still takes a
        properly bias-corrected first step.
        """
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            t = self._steps.get(key, 0) + 1
            self._steps[key] = t
            m = self._m.get(key, np.zeros_like(param.data))
            v = self._v.get(key, np.zeros_like(param.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
