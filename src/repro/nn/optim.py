"""Gradient-descent optimizers.

ADMM-based pruning (Section III-C of the paper) explicitly requires a
modern adaptive optimizer — the paper notes C-LSTM's training pipeline could
not support ADMM for exactly this reason — so :class:`Adam` is the default
throughout the experiments; :class:`SGD` is kept for ablation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Internal state as named arrays, keyed by parameter *index*.

        Indices refer to positions in ``self.params``, so a checkpoint
        restores correctly into any optimizer built over the same
        parameter list in the same order (the usual
        ``model.parameters()`` traversal) — parameter identity (``id``)
        is process-local and never serialized.  A stateless optimizer
        returns ``{}``.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`.

        Restored training must continue *bit-identically* to a run that
        never serialized, so implementations copy buffers verbatim.
        Raises :class:`ValueError` on unknown keys or shape mismatches.
        """
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but got state keys "
                f"{sorted(state)}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                vel = grad if vel is None else self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for index, param in enumerate(self.params):
            vel = self._velocity.get(id(param))
            if vel is not None:
                state[f"{index}.velocity"] = vel.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._velocity = {}
        for key, value in state.items():
            index = _slot_index(key, ".velocity", len(self.params), type(self))
            param = self.params[index]
            value = np.asarray(value)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"velocity for param {index} has shape {value.shape}, "
                    f"param has {param.data.shape}"
                )
            self._velocity[id(param)] = value.astype(param.data.dtype).copy()


class _AdamSlot:
    """Per-parameter Adam state: moments, step count, one scratch buffer."""

    __slots__ = ("m", "v", "scratch", "t")

    def __init__(self, shape_like: np.ndarray) -> None:
        self.m = np.zeros_like(shape_like)
        self.v = np.zeros_like(shape_like)
        self.scratch = np.empty_like(shape_like)
        self.t = 0


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    The moment updates are fused: each parameter keeps preallocated
    ``m``/``v``/scratch buffers and every update runs as in-place numpy
    ufunc calls, so a step allocates nothing and makes one pass over each
    array per moment — the per-parameter Python work is a handful of
    attribute loads instead of dict lookups and fresh temporaries.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._slots: Dict[int, _AdamSlot] = {}

    def step(self) -> None:
        """Apply one Adam update using the gradients currently stored.

        Step counts (and thus bias correction) are per-parameter, so a
        parameter that receives its first gradient late still takes a
        properly bias-corrected first step.
        """
        beta1, beta2 = self.beta1, self.beta2
        for param in self.params:
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            slot = self._slots.get(id(param))
            if slot is None:
                slot = self._slots[id(param)] = _AdamSlot(param.data)
            slot.t += 1
            m, v, scratch = slot.m, slot.v, slot.scratch
            # m = beta1*m + (1-beta1)*grad, in place.
            m *= beta1
            np.multiply(grad, 1.0 - beta1, out=scratch)
            m += scratch
            # v = beta2*v + (1-beta2)*grad^2, in place.
            v *= beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - beta2
            v += scratch
            # param -= lr * (m / (1-beta1^t)) / (sqrt(v / (1-beta2^t)) + eps)
            np.divide(v, 1.0 - beta2**slot.t, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / (1.0 - beta1**slot.t)
            param.data -= scratch

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for index, param in enumerate(self.params):
            slot = self._slots.get(id(param))
            if slot is None:
                continue
            state[f"{index}.m"] = slot.m.copy()
            state[f"{index}.v"] = slot.v.copy()
            # 0-d array so the whole state dict serializes uniformly.
            state[f"{index}.t"] = np.asarray(slot.t, dtype=np.int64)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        slots: Dict[int, _AdamSlot] = {}
        by_index: Dict[int, Dict[str, np.ndarray]] = {}
        for key, value in state.items():
            for suffix in (".m", ".v", ".t"):
                if key.endswith(suffix):
                    index = _slot_index(key, suffix, len(self.params), type(self))
                    by_index.setdefault(index, {})[suffix[1:]] = np.asarray(value)
                    break
            else:
                raise ValueError(f"unknown Adam state key {key!r}")
        for index, fields in by_index.items():
            missing = {"m", "v", "t"} - set(fields)
            if missing:
                raise ValueError(
                    f"Adam state for param {index} is missing {sorted(missing)}"
                )
            param = self.params[index]
            slot = _AdamSlot(param.data)
            for moment in ("m", "v"):
                value = fields[moment]
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"Adam {moment} for param {index} has shape "
                        f"{value.shape}, param has {param.data.shape}"
                    )
                getattr(slot, moment)[...] = value
            slot.t = int(fields["t"])
            slots[id(param)] = slot
        self._slots = slots


def _slot_index(key: str, suffix: str, num_params: int, owner: type) -> int:
    """Parse and bound-check the ``<index><suffix>`` key of a state entry."""
    stem = key[: -len(suffix)]
    try:
        index = int(stem)
    except ValueError:
        raise ValueError(f"unknown {owner.__name__} state key {key!r}") from None
    if not 0 <= index < num_params:
        raise ValueError(
            f"{owner.__name__} state key {key!r} refers to param {index}, "
            f"optimizer has {num_params}"
        )
    return index
