"""Functional neural-network operations on :class:`~repro.nn.tensor.Tensor`.

These are free functions composing the primitive autograd ops, plus a fused
``cross_entropy`` with a hand-written backward rule for numerical stability
(the standard softmax + log trick would lose precision for confident logits).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import Tensor, as_tensor


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return as_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return as_tensor(x).relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weight_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer class ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, C)``.
    targets:
        Integer array of shape ``(N,)`` with values in ``[0, C)``.
    weight_mask:
        Optional per-sample 0/1 weights of shape ``(N,)`` — used to mask
        padded frames in batched utterances.  The loss is averaged over the
        *unmasked* samples.

    Implemented as a fused op with an analytic backward
    ``softmax(logits) - onehot(targets)`` for stability and speed.
    """
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, C) logits, got {logits.shape}")
    targets = np.asarray(targets)
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    n, c = logits.shape
    if targets.size and (targets.min() < 0 or targets.max() >= c):
        raise ValueError("targets contain class indices outside [0, C)")

    if weight_mask is None:
        weights = None
        denom = max(float(n), 1.0)
    else:
        weights = np.asarray(weight_mask, dtype=np.float64)
        if weights.shape != (n,):
            raise ShapeError(f"weight_mask must be ({n},), got {weights.shape}")
        denom = max(weights.sum(), 1.0)

    # One exp over the logits, shared between the loss and the backward's
    # softmax: the (N, C) exponentials are kept and normalized in place
    # instead of exponentiating the full log-prob matrix a second time.
    z = logits.data
    row = np.arange(n)
    zmax = z.max(axis=1, keepdims=True)
    shifted = z - zmax
    exp_shifted = np.exp(shifted)
    sumexp = exp_shifted.sum(axis=1)
    picked = shifted[row, targets] - np.log(sumexp)
    if weights is None:
        loss_value = -picked.sum() / denom
    else:
        loss_value = -(picked * weights).sum() / denom

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = exp_shifted / sumexp[:, None]
        probs[row, targets] -= 1.0
        if weights is None:
            probs *= float(grad) / denom
        else:
            probs *= (float(grad) / denom) * weights[:, None]
        logits._accumulate(probs)

    return logits._make_child(np.asarray(loss_value), (logits,), backward)


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error between a tensor and a constant target array."""
    prediction = as_tensor(prediction)
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
