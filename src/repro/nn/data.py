"""Dataset/DataLoader abstractions for variable-length sequence batches.

Speech utterances have different lengths, so batching pads features and
labels to the batch maximum and returns a 0/1 frame mask that downstream
loss code uses to ignore padded frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import RngLike, new_rng


@dataclass
class SequenceExample:
    """One utterance: frame features ``(T, D)`` and per-frame labels ``(T,)``."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.features.ndim != 2:
            raise ShapeError(f"features must be (T, D), got {self.features.shape}")
        if self.labels.shape != (self.features.shape[0],):
            raise ShapeError(
                f"labels shape {self.labels.shape} must be "
                f"({self.features.shape[0]},)"
            )

    def __len__(self) -> int:
        return self.features.shape[0]


@dataclass
class Batch:
    """A padded minibatch of utterances (time-major).

    Attributes
    ----------
    features: ``(T_max, B, D)`` padded frame features.
    labels:   ``(T_max, B)`` padded labels (padding value 0, masked out).
    mask:     ``(T_max, B)`` 1.0 for real frames, 0.0 for padding.
    lengths:  ``(B,)`` true utterance lengths.
    """

    features: np.ndarray
    labels: np.ndarray
    mask: np.ndarray
    lengths: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.features.shape[1]

    @property
    def max_length(self) -> int:
        return self.features.shape[0]

    def num_frames(self) -> int:
        """Number of real (unpadded) frames in the batch."""
        return int(self.lengths.sum())


def collate(examples: Sequence[SequenceExample]) -> Batch:
    """Pad a list of :class:`SequenceExample` into a time-major :class:`Batch`."""
    if not examples:
        raise ValueError("collate() needs at least one example")
    dims = {ex.features.shape[1] for ex in examples}
    if len(dims) != 1:
        raise ShapeError(f"inconsistent feature dims in batch: {sorted(dims)}")
    dim = dims.pop()
    lengths = np.array([len(ex) for ex in examples], dtype=np.int64)
    t_max = int(lengths.max())
    batch = len(examples)
    features = np.zeros((t_max, batch, dim))
    labels = np.zeros((t_max, batch), dtype=np.int64)
    mask = np.zeros((t_max, batch))
    for b, example in enumerate(examples):
        t = len(example)
        features[:t, b, :] = example.features
        labels[:t, b] = example.labels
        mask[:t, b] = 1.0
    return Batch(features=features, labels=labels, mask=mask, lengths=lengths)


class Dataset:
    """In-memory sequence dataset."""

    def __init__(self, examples: Sequence[SequenceExample]) -> None:
        self.examples: List[SequenceExample] = list(examples)

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> SequenceExample:
        return self.examples[index]


class DataLoader:
    """Iterate a :class:`Dataset` in shuffled, padded minibatches."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 8,
        shuffle: bool = True,
        rng: RngLike = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            chunk = indices[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield collate([self.dataset[int(i)] for i in chunk])


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng: RngLike = None
) -> Tuple[Dataset, Dataset]:
    """Randomly split a dataset into train/test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = new_rng(rng)
    indices = np.arange(len(dataset))
    rng.shuffle(indices)
    n_test = max(1, int(round(test_fraction * len(dataset))))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    return (
        Dataset([dataset[int(i)] for i in train_idx]),
        Dataset([dataset[int(i)] for i in test_idx]),
    )
