"""Deterministic fault injection for any supervised worker process.

Robustness claims that are only exercised by real crashes are not
testable claims.  :class:`FaultConfig` is a *seeded, deterministic*
fault plan handed to a worker process — a serving-fabric worker, a
distributed-training gradient worker, or a sweep cell — and
:class:`FaultInjector` interprets it inside that worker.  Faults
modeled:

* **crash** — the process dies with ``os._exit`` (no cleanup, no
  ``atexit``, pipes torn mid-protocol) just *before* processing its
  Nth unit of work (a streamed chunk, a training step), so that unit is
  lost with the worker.  This is the hardest honest failure a single
  host can produce short of SIGKILL.
* **stall** — the worker sleeps mid-protocol (a wedged kernel call, a
  page-fault storm): the process stays alive but stops answering, which
  is exactly what heartbeat/RPC timeouts must catch.
* **message drop** — acknowledgements are dropped with a seeded
  Bernoulli rate; backpressure accounting must survive lost acks
  (cumulative sequence numbers make later acks self-healing).
* **message delay** — every worker→parent send is delayed by a fixed
  amount, inflating measured latency without breaking correctness.

Faults are scoped to one worker index (``target_worker``) and, by
default, to the worker's *first* incarnation — a crash-faulted worker
restarts clean, so recovery can be asserted.  ``repeat=True`` keeps the
fault across restarts, which is how restart-budget/permanent-death
paths are driven.

Historically this lived in :mod:`repro.engine.fabric.faults`; that
module remains as a re-export alias so fabric callers are unchanged.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError

#: Exit code of an injected crash, distinguishable from a real fault in
#: worker exit status while still reading as an abnormal death.
CRASH_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultConfig:
    """A seeded, deterministic fault plan for one worker.

    ``crash_after_chunks=k`` / ``stall_after_chunks=k`` fire just before
    the worker processes its ``k+1``-th unit of work — a streamed chunk
    in the serving fabric, a training step in the distributed trainer
    (the in-flight unit is lost with the crash).  ``None`` disables that
    fault.
    """

    crash_after_chunks: Optional[int] = None
    stall_after_chunks: Optional[int] = None
    #: Die (``os._exit``) on receiving a hot-swap command, before the
    #: flush barrier runs — the deployment-time crash: queued chunks and
    #: live state are lost mid-swap and must recover via journal replay.
    crash_on_swap: bool = False
    stall_seconds: float = 30.0
    drop_ack_rate: float = 0.0
    delay_response_s: float = 0.0
    seed: int = 0
    target_worker: Optional[int] = 0
    repeat: bool = False

    def __post_init__(self) -> None:
        for name in ("crash_after_chunks", "stall_after_chunks"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if not 0.0 <= self.drop_ack_rate <= 1.0:
            raise ConfigError(
                f"drop_ack_rate must be in [0, 1], got {self.drop_ack_rate}"
            )
        if self.stall_seconds < 0 or self.delay_response_s < 0:
            raise ConfigError("fault durations must be >= 0")

    def applies_to(self, worker_index: int, incarnation: int) -> bool:
        """Does this plan arm inside the given worker incarnation?"""
        if self.target_worker is not None and worker_index != self.target_worker:
            return False
        return self.repeat or incarnation == 0


class FaultInjector:
    """Worker-process-side interpreter of a :class:`FaultConfig`.

    Constructed with ``None`` (or a config that does not apply to this
    incarnation) it is inert, so the hot path pays one attribute check.
    """

    def __init__(self, config: Optional[FaultConfig]) -> None:
        self._config = config
        self._chunks = 0
        self._stalled = False
        self._rng = (
            np.random.default_rng(config.seed) if config is not None else None
        )

    def on_chunk(self) -> None:
        """Called before each unit of work is processed; may crash or stall."""
        if self._config is None:
            return
        self._chunks += 1
        config = self._config
        if (
            config.crash_after_chunks is not None
            and self._chunks > config.crash_after_chunks
        ):
            os._exit(CRASH_EXIT_CODE)
        if (
            config.stall_after_chunks is not None
            and not self._stalled
            and self._chunks > config.stall_after_chunks
        ):
            self._stalled = True
            time.sleep(config.stall_seconds)

    #: Training workers count steps, not chunks; the counter is the same.
    on_step = on_chunk

    def on_swap(self) -> None:
        """Called when the worker receives a hot-swap command."""
        if self._config is not None and self._config.crash_on_swap:
            os._exit(CRASH_EXIT_CODE)

    def before_send(self) -> None:
        """Called before each worker→parent send; may delay it."""
        if self._config is not None and self._config.delay_response_s > 0:
            time.sleep(self._config.delay_response_s)

    def drop_ack(self) -> bool:
        """Seeded Bernoulli: should this acknowledgement be dropped?"""
        if self._config is None or self._config.drop_ack_rate == 0.0:
            return False
        return bool(self._rng.random() < self._config.drop_ack_rate)


__all__ = ["FaultConfig", "FaultInjector", "CRASH_EXIT_CODE"]
