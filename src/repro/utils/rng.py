"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalize that convention so
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int`` (deterministic), an existing generator
    (returned unchanged), or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent and stable across runs for a fixed seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: Optional[int], *salts: int) -> int:
    """Deterministically mix ``salts`` into ``seed`` to get a new seed."""
    base = 0 if seed is None else int(seed)
    mixed = np.random.SeedSequence([base, *[int(s) for s in salts]])
    return int(mixed.generate_state(1, dtype=np.uint64)[0] % (2**63))
