"""Crash-safe file writes: one copy of the fsync+rename discipline.

Every durable artifact in this codebase — compiled plans
(:mod:`repro.engine.artifact`), registry metadata
(:mod:`repro.engine.registry`), training checkpoints
(:mod:`repro.training.checkpoint`) — must never be observable half
written: a recovering process reads either the complete previous file or
the complete new one.  The discipline is always the same four moves:

1. create a temp file *in the destination directory* (same filesystem,
   so the final rename is atomic),
2. write the payload, ``flush`` + ``fsync`` the file,
3. publish with an atomic ``os.replace``,
4. ``fsync`` the directory so the rename itself survives a power cut
   (best-effort — not every platform allows opening a directory).

:func:`atomic_write` is that discipline as a function; callers supply
only the payload-writing callable and their own typed-error wrapping.
:func:`content_checksum` is the companion integrity primitive: a SHA-256
over a JSON header plus named arrays, shared by plan artifacts and
training checkpoints so both formats detect post-save corruption the
same way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Callable, Dict, Union

import numpy as np

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "content_checksum",
    "fsync_dir",
]


def fsync_dir(path: Union[str, Path]) -> None:
    """Best-effort fsync of a directory (makes a rename durable)."""
    try:
        dir_fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def atomic_write(
    path: Union[str, Path],
    write: Callable[[IO], None],
    *,
    text: bool = False,
    encoding: str = "utf-8",
) -> Path:
    """Write a file crash-safely: temp + fsync + ``os.replace`` + dir fsync.

    ``write`` receives the open temp-file handle and writes the complete
    payload.  On any failure the temp file is removed and the original
    exception propagates (``OSError`` included — callers wrap it in their
    own typed error); ``path`` is never left torn.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        if text:
            handle = os.fdopen(fd, "w", encoding=encoding)
        else:
            handle = os.fdopen(fd, "wb")
        with handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
    return path


def atomic_write_json(path: Union[str, Path], payload: Dict) -> Path:
    """Durable atomic JSON write (sorted keys, 2-space indent)."""
    return atomic_write(
        path,
        lambda handle: json.dump(payload, handle, indent=2, sort_keys=True),
        text=True,
    )


def content_checksum(meta: Dict, arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over a JSON header and every array's dtype/shape/bytes.

    Keyed on the canonical (sorted-key) JSON form of ``meta`` so the
    digest is independent of dict ordering, and on each array's dtype
    and shape as well as its raw bytes so a same-length reinterpretation
    cannot collide.
    """
    digest = hashlib.sha256()
    digest.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()
