"""Shared wall-clock measurement helper for benchmarks and harnesses."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple

import numpy as np


def timed_median(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """Median wall seconds of ``fn`` over ``repeats`` runs, plus its result.

    One untimed warm-up call runs first so lazily built state (kernel
    plans, grown work buffers, caches) does not pollute the samples.
    """
    result = fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples)), result
