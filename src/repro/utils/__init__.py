"""Shared utilities: seeded RNG handling, validation, small helpers."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.validation import (
    check_2d,
    check_positive_int,
    check_probability,
    check_same_shape,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "check_2d",
    "check_positive_int",
    "check_probability",
    "check_same_shape",
]
