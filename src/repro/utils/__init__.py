"""Shared utilities: seeded RNG handling, validation, crash-safe writes,
deterministic fault injection, descriptive statistics."""

from repro.utils.atomic_write import (
    atomic_write,
    atomic_write_json,
    content_checksum,
    fsync_dir,
)
from repro.utils.faults import CRASH_EXIT_CODE, FaultConfig, FaultInjector
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.stats import Summary, percentile, summarize
from repro.utils.validation import (
    check_2d,
    check_positive_int,
    check_probability,
    check_same_shape,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "check_2d",
    "check_positive_int",
    "check_probability",
    "check_same_shape",
    "atomic_write",
    "atomic_write_json",
    "content_checksum",
    "fsync_dir",
    "FaultConfig",
    "FaultInjector",
    "CRASH_EXIT_CODE",
    "Summary",
    "percentile",
    "summarize",
]
