"""Shared descriptive statistics for benchmark harnesses and fleet stats.

The serving fabric, the streaming scheduler, and every ``*_bench``
harness report the same handful of summaries (p50/p95 latency, means
over partial windows); each used to carry its own empty-list-guarded
``np.percentile`` wrapper.  This module is the one copy, with the
edge-case contract spelled out:

* empty input → ``0.0`` (a fleet that has served nothing has zero
  latency, not NaN),
* single element → that element for every percentile,
* non-finite values are kept (they indicate a real measurement bug and
  should poison the summary rather than vanish).

Re-exported as :mod:`repro.eval` utilities for harness code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["percentile", "summarize", "Summary"]


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile; ``0.0`` on an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), pct))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample (possibly empty)."""

    count: int
    mean: float
    p50: float
    p95: float
    min: float
    max: float

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "min": self.min,
            "max": self.max,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a sample; all-zero summary on empty input."""
    data = [float(v) for v in values]
    if not data:
        return Summary(count=0, mean=0.0, p50=0.0, p95=0.0, min=0.0, max=0.0)
    array = np.asarray(data, dtype=np.float64)
    return Summary(
        count=len(data),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50.0)),
        p95=float(np.percentile(array, 95.0)),
        min=float(array.min()),
        max=float(array.max()),
    )
