"""Lightweight argument validation helpers used across the library."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def check_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise :class:`ShapeError` unless ``array`` is a 2-D ndarray."""
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, what: str = "arrays") -> None:
    """Raise :class:`ShapeError` unless ``a`` and ``b`` have equal shapes."""
    if np.shape(a) != np.shape(b):
        raise ShapeError(
            f"{what} must have the same shape, got {np.shape(a)} vs {np.shape(b)}"
        )


def check_positive_int(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` is a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
