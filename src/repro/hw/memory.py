"""Memory-traffic accounting for one compiled inference.

Traffic classes, per :class:`~repro.compiler.ir.LayerPlan`:

* **weights + format metadata** — streamed from DRAM once per inference and
  then held in on-chip storage across the recurrence timesteps (weight
  reuse across timesteps is what makes RNN inference memory-bound at low
  compression and overhead-bound at high compression),
* **activations** — the input vector is small enough to live in on-chip
  cache, so DRAM sees each *distinct* input element once per timestep
  (``unique_cols``); the per-tile gather *instructions* are charged on the
  compute side by the executor, which is where the redundant-load-
  elimination pass pays off,
* **output writes** — one per surviving row per timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import KernelPlan, LayerPlan


@dataclass(frozen=True)
class LayerTraffic:
    """Bytes moved by one layer over a full inference."""

    name: str
    weight_bytes: int
    metadata_bytes: int
    activation_bytes: int
    output_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.weight_bytes
            + self.metadata_bytes
            + self.activation_bytes
            + self.output_bytes
        )


def layer_traffic(layer: LayerPlan, timesteps: int) -> LayerTraffic:
    """Traffic of ``layer`` across ``timesteps`` recurrence steps."""
    value_bytes = layer.tile.value_bytes
    return LayerTraffic(
        name=layer.name,
        weight_bytes=layer.weight_bytes,
        metadata_bytes=layer.metadata_bytes,
        activation_bytes=layer.unique_cols * value_bytes * timesteps,
        output_bytes=layer.output_writes_per_step * value_bytes * timesteps,
    )


def plan_traffic(plan: KernelPlan) -> list:
    """Per-layer traffic for a whole plan."""
    return [layer_traffic(layer, plan.timesteps) for layer in plan.layers]


def total_bytes(plan: KernelPlan) -> int:
    """Total bytes moved per inference by ``plan``."""
    return sum(t.total_bytes for t in plan_traffic(plan))
