"""Roofline-style bottleneck classification for simulated inference.

For every layer of a simulated plan, report which resource bounds it —
compute, memory bandwidth, or kernel-launch overhead — and its arithmetic
intensity.  This is the analysis behind the paper's Table II narrative:
dense RNN inference is compute/memory-bound, extreme compression makes it
overhead-bound (hence the GOP/s collapse and the Figure 4 plateau).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.compiler.ir import KernelPlan
from repro.hw.device import DeviceSpec
from repro.hw.executor import simulate
from repro.hw.memory import layer_traffic


@dataclass(frozen=True)
class LayerRoofline:
    """Bottleneck analysis of one layer."""

    name: str
    bound: str  # "compute", "memory", or "overhead"
    compute_us: float
    memory_us: float
    overhead_us: float
    arithmetic_intensity: float  # flops per DRAM byte

    @property
    def busy_us(self) -> float:
        return max(self.compute_us, self.memory_us) + self.overhead_us


@dataclass
class RooflineReport:
    """Whole-plan bottleneck summary."""

    device_name: str
    layers: List[LayerRoofline]

    def dominant_bound(self) -> str:
        """The resource bounding the largest share of total time."""
        totals = {"compute": 0.0, "memory": 0.0, "overhead": 0.0}
        for layer in self.layers:
            totals[layer.bound] += layer.busy_us
        return max(totals, key=totals.get)

    def counts(self) -> dict:
        """Number of layers per bound class."""
        out = {"compute": 0, "memory": 0, "overhead": 0}
        for layer in self.layers:
            out[layer.bound] += 1
        return out


def roofline(plan: KernelPlan, device: DeviceSpec) -> RooflineReport:
    """Classify every layer of ``plan`` on ``device``."""
    result = simulate(plan, device)
    layers: List[LayerRoofline] = []
    for layer, timing in zip(plan.layers, result.layers):
        parts = {
            "compute": timing.compute_us,
            "memory": timing.memory_us,
            "overhead": timing.overhead_us,
        }
        bound = max(parts, key=parts.get)
        bytes_moved = layer_traffic(layer, plan.timesteps).total_bytes
        flops = layer.flops_per_step * plan.timesteps
        intensity = flops / bytes_moved if bytes_moved else float("inf")
        layers.append(
            LayerRoofline(
                name=layer.name,
                bound=bound,
                compute_us=timing.compute_us,
                memory_us=timing.memory_us,
                overhead_us=timing.overhead_us,
                arithmetic_intensity=intensity,
            )
        )
    return RooflineReport(device_name=device.name, layers=layers)


def render_roofline(report: RooflineReport) -> str:
    """Plain-text rendering of a roofline report."""
    lines = [f"Roofline on {report.device_name} "
             f"(dominant bound: {report.dominant_bound()})"]
    for layer in report.layers:
        lines.append(
            f"  {layer.name}: {layer.bound}-bound  "
            f"compute {layer.compute_us:.1f} us, memory {layer.memory_us:.1f} us, "
            f"overhead {layer.overhead_us:.1f} us, "
            f"{layer.arithmetic_intensity:.2f} flop/B"
        )
    return "\n".join(lines)
