"""Analytic mobile-hardware simulator (Adreno 640 / Kryo 485 / ESE ref)."""

from repro.hw.device import DeviceSpec, ReferenceAccelerator
from repro.hw.energy import EnergyReport, energy_report
from repro.hw.executor import (
    LayerTiming,
    NumericExecutor,
    SimulationResult,
    simulate,
    simulate_layer,
    thread_balance,
)
from repro.hw.memory import LayerTraffic, layer_traffic, plan_traffic, total_bytes
from repro.hw.profiles import ADRENO_640, ESE_FPGA, KRYO_485
from repro.hw.roofline import LayerRoofline, RooflineReport, render_roofline, roofline

__all__ = [
    "DeviceSpec",
    "ReferenceAccelerator",
    "ADRENO_640",
    "KRYO_485",
    "ESE_FPGA",
    "simulate",
    "simulate_layer",
    "thread_balance",
    "NumericExecutor",
    "SimulationResult",
    "LayerTiming",
    "LayerTraffic",
    "layer_traffic",
    "plan_traffic",
    "total_bytes",
    "EnergyReport",
    "energy_report",
    "roofline",
    "render_roofline",
    "RooflineReport",
    "LayerRoofline",
]
