"""Energy model and the ESE-normalized efficiency metric of Table II.

The paper computes energy efficiency as
``InferenceFrames / (Power × InferenceTime)`` — frames per joule — and
reports it normalized by the ESE FPGA implementation's value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceSpec, ReferenceAccelerator
from repro.hw.executor import SimulationResult
from repro.hw.profiles import ESE_FPGA


@dataclass(frozen=True)
class EnergyReport:
    """Energy numbers for one simulated inference."""

    device_name: str
    latency_us: float
    power_watts: float
    energy_uj: float  # microjoules per frame
    frames_per_joule: float
    normalized_efficiency: float  # relative to the ESE reference


def energy_report(
    result: SimulationResult,
    device: DeviceSpec,
    reference: ReferenceAccelerator = ESE_FPGA,
) -> EnergyReport:
    """Energy per frame and ESE-normalized efficiency for ``result``."""
    energy_uj = device.power_watts * result.latency_us  # W × µs = µJ
    frames_per_joule = 1e6 / energy_uj if energy_uj else float("inf")
    normalized = frames_per_joule / reference.frames_per_joule()
    return EnergyReport(
        device_name=device.name,
        latency_us=result.latency_us,
        power_watts=device.power_watts,
        energy_uj=energy_uj,
        frames_per_joule=frames_per_joule,
        normalized_efficiency=normalized,
    )
