"""Device specifications for the analytic mobile cost model.

A :class:`DeviceSpec` captures the handful of parameters the executor
needs: achievable GEMV arithmetic throughput, sustained memory bandwidth,
per-kernel launch/dispatch overhead, thread count, and board power.

Values for the paper's platforms live in :mod:`repro.hw.profiles`; they are
calibrated once against the paper's *dense* baselines (Table II row 1) and
then fixed — every compressed-model prediction is derived, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """An execution target for the simulator.

    Attributes
    ----------
    name:
        Human-readable device name.
    num_threads:
        Concurrent hardware threads the GEMV kernels use (CPU cores or GPU
        wavefront lanes effectively available to one kernel).
    flops_per_us:
        Achievable multiply-add operations per microsecond for well-shaped
        GEMV work (already discounted from peak for this kernel class).
    mem_bandwidth_bytes_per_us:
        Sustained DRAM bandwidth in bytes per microsecond.
    kernel_overhead_us:
        Fixed cost of launching one kernel (driver/dispatch); charged per
        layer per timestep.
    power_watts:
        Average board power draw while running inference.
    parallel_fill:
        Saturation constant of the parallel-efficiency model: a kernel with
        ``R`` output rows achieves efficiency ``R / (R + parallel_fill)``.
        Small kernels cannot fill the machine — the effect that makes GOP/s
        fall as compression rises (Table II).
    gather_cost:
        Issue-slot cost of one *irregular* (per-nonzero indexed, CSR-style)
        input gather relative to an arithmetic op.  Structured formats
        (dense rows, BSPC panels) load sequentially at cost 1; CSR's
        random gathers cause divergence and pointer chasing — the
        inefficiency Section III-A attributes to ESE's irregular pruning.
    tile_dispatch_us:
        Fixed cost of issuing one row-tile's worth of work, charged per
        tile per timestep.  Zero on the paper's mobile profiles (a GPU
        wavefront launch is free once the kernel is running); host
        calibration fits it to capture the per-panel dispatch overhead
        that makes large row blocks win on a CPU host engine.
    """

    name: str
    num_threads: int
    flops_per_us: float
    mem_bandwidth_bytes_per_us: float
    kernel_overhead_us: float
    power_watts: float
    parallel_fill: float = 64.0
    gather_cost: float = 4.0
    tile_dispatch_us: float = 0.0

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {self.num_threads}")
        for field_name in (
            "flops_per_us",
            "mem_bandwidth_bytes_per_us",
            "kernel_overhead_us",
            "power_watts",
            "parallel_fill",
            "tile_dispatch_us",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be >= 0")
        if self.flops_per_us == 0 or self.mem_bandwidth_bytes_per_us == 0:
            raise ConfigError("throughput parameters must be positive")

    def parallel_efficiency(self, rows: int) -> float:
        """Fraction of peak throughput a kernel with ``rows`` outputs gets."""
        if rows <= 0:
            return 1.0
        return rows / (rows + self.parallel_fill)


@dataclass(frozen=True)
class ReferenceAccelerator:
    """A fixed published comparison point (not simulated).

    The paper normalizes energy efficiency against ESE's FPGA deployment:
    82.7 µs per frame at 41 W.  Only these two numbers are used.
    """

    name: str
    latency_us_per_frame: float
    power_watts: float

    def frames_per_joule(self) -> float:
        """Inference frames per joule — the normalization unit of Table II."""
        return 1.0 / (self.power_watts * self.latency_us_per_frame * 1e-6)
