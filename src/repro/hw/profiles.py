"""Calibrated device profiles for the paper's experimental platforms.

Calibration procedure (documented in EXPERIMENTS.md):

* **Adreno 640** (Samsung Galaxy S10 GPU, fp16 kernels): effective GEMV
  throughput and kernel overhead set so the *dense* 9.6M-parameter GRU
  lands at Table II row 1 — 3590 µs/frame, 161.55 GOP/s — and the
  overhead floor matches the high-compression plateau (~79 µs at 301×).
  Power back-solved from the paper's own normalized energy-efficiency
  column (0.88× ESE at 1× compression ⇒ ≈1.07 W), consistent across all
  ten rows, so the paper evidently assumed constant GPU power.
* **Kryo 485** (fp32 NEON kernels): same procedure against the CPU columns
  (7130 µs dense, ~146 µs floor, 0.25× ESE ⇒ ≈1.9 W).
* **ESE FPGA**: used purely as the published reference point
  (82.7 µs/frame, 41 W), exactly as the paper does.
"""

from __future__ import annotations

from repro.hw.device import DeviceSpec, ReferenceAccelerator

#: Qualcomm Adreno 640 mobile GPU (Snapdragon 855), 16-bit float kernels.
ADRENO_640 = DeviceSpec(
    name="Adreno 640 (mobile GPU, fp16)",
    num_threads=128,
    flops_per_us=178_000.0,  # ≈178 effective GFLOP/s for GEMV at fp16
    mem_bandwidth_bytes_per_us=34_000.0,  # ≈34 GB/s LPDDR4X
    kernel_overhead_us=0.45,  # per weight-matrix kernel dispatch
    power_watts=1.073,
    parallel_fill=64.0,
    gather_cost=6.0,  # SIMT divergence makes random gathers expensive
)

#: Qualcomm Kryo 485 octa-core mobile CPU, 32-bit float NEON kernels.
KRYO_485 = DeviceSpec(
    name="Kryo 485 (mobile CPU, fp32)",
    num_threads=8,
    flops_per_us=89_000.0,  # ≈89 effective GFLOP/s across 8 cores
    mem_bandwidth_bytes_per_us=15_000.0,  # ≈15 GB/s from the CPU side
    kernel_overhead_us=1.0,  # thread-pool dispatch per kernel
    power_watts=1.9,
    parallel_fill=48.0,
    gather_cost=3.0,  # cache-missing indexed loads on NEON cores
)

#: ESE's FPGA deployment (Han et al., FPGA 2017) — published reference only.
ESE_FPGA = ReferenceAccelerator(
    name="ESE (XCKU060 FPGA)",
    latency_us_per_frame=82.7,
    power_watts=41.0,
)
