"""Calibrated device profiles for the paper's experimental platforms,
plus the host-calibration store.

Calibration procedure (documented in EXPERIMENTS.md):

* **Adreno 640** (Samsung Galaxy S10 GPU, fp16 kernels): effective GEMV
  throughput and kernel overhead set so the *dense* 9.6M-parameter GRU
  lands at Table II row 1 — 3590 µs/frame, 161.55 GOP/s — and the
  overhead floor matches the high-compression plateau (~79 µs at 301×).
  Power back-solved from the paper's own normalized energy-efficiency
  column (0.88× ESE at 1× compression ⇒ ≈1.07 W), consistent across all
  ten rows, so the paper evidently assumed constant GPU power.
* **Kryo 485** (fp32 NEON kernels): same procedure against the CPU columns
  (7130 µs dense, ~146 µs floor, 0.25× ESE ⇒ ≈1.9 W).
* **ESE FPGA**: used purely as the published reference point
  (82.7 µs/frame, 41 W), exactly as the paper does.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError
from repro.hw.device import DeviceSpec, ReferenceAccelerator

#: Qualcomm Adreno 640 mobile GPU (Snapdragon 855), 16-bit float kernels.
ADRENO_640 = DeviceSpec(
    name="Adreno 640 (mobile GPU, fp16)",
    num_threads=128,
    flops_per_us=178_000.0,  # ≈178 effective GFLOP/s for GEMV at fp16
    mem_bandwidth_bytes_per_us=34_000.0,  # ≈34 GB/s LPDDR4X
    kernel_overhead_us=0.45,  # per weight-matrix kernel dispatch
    power_watts=1.073,
    parallel_fill=64.0,
    gather_cost=6.0,  # SIMT divergence makes random gathers expensive
)

#: Qualcomm Kryo 485 octa-core mobile CPU, 32-bit float NEON kernels.
KRYO_485 = DeviceSpec(
    name="Kryo 485 (mobile CPU, fp32)",
    num_threads=8,
    flops_per_us=89_000.0,  # ≈89 effective GFLOP/s across 8 cores
    mem_bandwidth_bytes_per_us=15_000.0,  # ≈15 GB/s from the CPU side
    kernel_overhead_us=1.0,  # thread-pool dispatch per kernel
    power_watts=1.9,
    parallel_fill=48.0,
    gather_cost=3.0,  # cache-missing indexed loads on NEON cores
)

#: ESE's FPGA deployment (Han et al., FPGA 2017) — published reference only.
ESE_FPGA = ReferenceAccelerator(
    name="ESE (XCKU060 FPGA)",
    latency_us_per_frame=82.7,
    power_watts=41.0,
)


# ---------------------------------------------------------------------------
# Host calibration store
# ---------------------------------------------------------------------------
# The paper's profiles above price *mobile* hardware; the executable
# engine runs on whatever machine hosts this process.  A host-calibrated
# DeviceSpec (fitted by ``repro.compiler.autotune.calibrate_cost_model``
# from measured traces) can be installed here so the tuner's analytic
# pre-filter and tile refinement price candidates for the machine that
# will actually run them.  Resolution order everywhere a device is
# optional: explicit argument > host calibration > ADRENO_640.

_CALIBRATION_VERSION = 1

_HOST_DEVICE: Optional[DeviceSpec] = None
_HOST_ENV_PROBED = False  # has REPRO_HOST_CALIBRATION been checked yet?


def spec_to_dict(spec: DeviceSpec) -> dict:
    """JSON-ready mapping of every :class:`DeviceSpec` field."""
    return dataclasses.asdict(spec)


def spec_from_dict(payload: dict) -> DeviceSpec:
    """Inverse of :func:`spec_to_dict`; rejects unknown/missing fields."""
    fields = {f.name for f in dataclasses.fields(DeviceSpec)}
    extra = set(payload) - fields
    if extra:
        raise ConfigError(
            f"unknown DeviceSpec fields in calibration: {sorted(extra)}"
        )
    missing = fields - set(payload)
    if missing:
        raise ConfigError(
            f"calibration is missing DeviceSpec fields: {sorted(missing)}"
        )
    return DeviceSpec(**payload)


def save_calibration(spec: DeviceSpec, path) -> Path:
    """Persist a calibrated device spec as JSON at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": _CALIBRATION_VERSION, "device": spec_to_dict(spec)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_calibration(path) -> DeviceSpec:
    """Load a calibration written by :func:`save_calibration`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"calibration file not found: {path}")
    except json.JSONDecodeError as exc:
        raise ConfigError(f"calibration file {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "device" not in payload:
        raise ConfigError(
            f"calibration file {path} has no 'device' entry"
        )
    version = payload.get("version")
    if version != _CALIBRATION_VERSION:
        raise ConfigError(
            f"calibration file {path} has version {version!r}; "
            f"this build reads version {_CALIBRATION_VERSION}"
        )
    return spec_from_dict(payload["device"])


def set_host_device(spec: Optional[DeviceSpec]) -> None:
    """Install ``spec`` as this process's host calibration (None clears)."""
    global _HOST_DEVICE, _HOST_ENV_PROBED
    if spec is not None and not isinstance(spec, DeviceSpec):
        raise ConfigError(
            f"host device must be a DeviceSpec, got {type(spec).__name__}"
        )
    _HOST_DEVICE = spec
    # An explicit set (or clear) overrides whatever the env may hold.
    _HOST_ENV_PROBED = True


def clear_host_device() -> None:
    """Drop the host calibration and re-arm the env-file probe."""
    global _HOST_DEVICE, _HOST_ENV_PROBED
    _HOST_DEVICE = None
    _HOST_ENV_PROBED = False


def host_device() -> Optional[DeviceSpec]:
    """The host-calibrated device, if one is installed.

    Checks the ``REPRO_HOST_CALIBRATION`` environment variable (a path to
    a :func:`save_calibration` JSON file) once, lazily, unless
    :func:`set_host_device` was called first.  Returns None when no
    calibration exists — callers fall back to a paper profile.
    """
    global _HOST_DEVICE, _HOST_ENV_PROBED
    if not _HOST_ENV_PROBED:
        _HOST_ENV_PROBED = True
        env_path = os.environ.get("REPRO_HOST_CALIBRATION")
        if env_path:
            try:
                _HOST_DEVICE = load_calibration(env_path)
            except ConfigError as exc:
                raise ConfigError(f"REPRO_HOST_CALIBRATION: {exc}")
    return _HOST_DEVICE
