"""Analytic execution of a :class:`~repro.compiler.ir.KernelPlan` on a
:class:`~repro.hw.device.DeviceSpec`.

Per layer, the model charges:

* **compute time** — ``(flops + gather instructions) / (throughput ×
  parallel_efficiency × balance)``.  Gather instructions are the per-tile
  input loads left after the compiler's redundant-load-elimination pass
  (they hit on-chip cache, so they cost issue slots, not DRAM);
  ``parallel_efficiency`` captures small kernels failing to fill the
  machine; ``balance ≤ 1`` is the load-balance factor derived from the
  actual per-thread work distribution of the reorder pass's row groups
  (mean-thread work vs. max).  Without reorder, rows with divergent
  patterns share threads and the imbalance penalty appears — exactly the
  thread-divergence issue Section IV-B(a) describes.
* **memory time** — layer traffic (weights once, distinct activations and
  outputs per timestep) at sustained bandwidth.
* Compute and memory overlap (double buffering), so a layer costs
  ``max(compute, memory)``; each layer additionally pays one kernel launch
  per timestep.

The returned :class:`SimulationResult` carries the Table II quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.compiler.ir import KernelPlan, LayerPlan
from repro.errors import SimulationError
from repro.hw.device import DeviceSpec
from repro.hw.memory import layer_traffic
from repro.sparse.blocks import grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class LayerTiming:
    """Cost breakdown for one layer over a full inference."""

    name: str
    compute_us: float
    memory_us: float
    overhead_us: float
    balance: float
    parallel_efficiency: float

    @property
    def busy_us(self) -> float:
        """Overlapped compute/memory time plus launch overhead."""
        return max(self.compute_us, self.memory_us) + self.overhead_us


@dataclass
class SimulationResult:
    """Outcome of simulating one inference frame."""

    device_name: str
    layers: List[LayerTiming]
    latency_us: float
    flops: int

    @property
    def gops(self) -> float:
        """Achieved giga-operations per second (Table II's GOP/s column)."""
        if self.latency_us == 0:
            return 0.0
        return self.flops / self.latency_us / 1e3

    @property
    def compute_us(self) -> float:
        return sum(layer.compute_us for layer in self.layers)

    @property
    def memory_us(self) -> float:
        return sum(layer.memory_us for layer in self.layers)

    @property
    def overhead_us(self) -> float:
        return sum(layer.overhead_us for layer in self.layers)


def thread_balance(layer: LayerPlan, num_threads: int) -> float:
    """Load-balance factor in (0, 1]: mean thread work / max thread work.

    Rows are assigned greedily in tile-sized chunks, longest-processing-
    time-first, group by group (tiles never mix groups).  With reorder,
    rows in a tile share patterns so chunk workloads are nearly equal;
    without it, a tile can pair a heavy row with empty ones.
    """
    if not layer.groups:
        return 1.0
    tile_rows = layer.tile.rows_per_thread
    chunks: List[int] = []
    for group in layer.groups:
        for start in range(0, group.num_rows, tile_rows):
            chunk_nnz = int(group.nnz_per_row[start : start + tile_rows].sum())
            chunks.append(chunk_nnz)
    if not chunks:
        return 1.0
    threads = np.zeros(num_threads)
    for work in sorted(chunks, reverse=True):
        threads[np.argmin(threads)] += work
    peak = threads.max()
    if peak == 0:
        return 1.0
    return float(threads.mean() / peak) if threads.mean() > 0 else 1.0


def tile_chunks(layer: LayerPlan) -> int:
    """Row-tile dispatches one step of this layer issues.

    Rows are walked in ``rows_per_thread`` chunks, group by group (tiles
    never mix groups), exactly as :func:`thread_balance` assigns them;
    layers with no reorder groups dispatch their kept rows as one run of
    chunks.
    """
    tile_rows = max(1, layer.tile.rows_per_thread)
    if layer.groups:
        return sum(-(-group.num_rows // tile_rows) for group in layer.groups)
    return -(-max(layer.kept_rows, 1) // tile_rows)


def simulate_layer(layer: LayerPlan, device: DeviceSpec, timesteps: int) -> LayerTiming:
    """Cost one layer across ``timesteps`` recurrence steps."""
    if timesteps < 1:
        raise SimulationError(f"timesteps must be >= 1, got {timesteps}")
    balance = thread_balance(layer, device.num_threads)
    efficiency = device.parallel_efficiency(layer.kept_rows)
    throughput = device.flops_per_us * efficiency * balance
    # Irregular (CSR) gathers pay the device's divergence/pointer-chasing
    # cost per load; structured formats stream loads at cost 1.
    load_cost = device.gather_cost if layer.format_name == "csr" else 1.0
    ops_per_step = layer.flops_per_step + load_cost * layer.act_loads_per_step
    compute_us = ops_per_step * timesteps / throughput if throughput else 0.0
    traffic = layer_traffic(layer, timesteps)
    memory_us = traffic.total_bytes / device.mem_bandwidth_bytes_per_us
    overhead_us = (
        device.kernel_overhead_us + device.tile_dispatch_us * tile_chunks(layer)
    ) * timesteps
    return LayerTiming(
        name=layer.name,
        compute_us=compute_us,
        memory_us=memory_us,
        overhead_us=overhead_us,
        balance=balance,
        parallel_efficiency=efficiency,
    )


class NumericExecutor:
    """Plan-then-execute on the host: real numerics for a compiled model.

    The analytic :func:`simulate` path answers "how fast would the mobile
    kernels be"; this executor answers "what do they compute".  Each pruned
    weight matrix is encoded *once* into its storage format (BSPC for
    block-structured weights, CSR when requested, dense otherwise) and every
    :meth:`matvec`/:meth:`matmat` afterwards dispatches through the
    :mod:`repro.kernels` registry — the same seam the sparse formats,
    RNN layers, and benchmarks use.
    """

    def __init__(
        self,
        weights: Dict[str, np.ndarray],
        format_name: str = "bspc",
        num_row_strips: int = 4,
        num_col_blocks: int = 8,
        backend: Optional[str] = None,
    ) -> None:
        if format_name not in ("bspc", "csr", "dense"):
            raise SimulationError(f"unknown format {format_name!r}")
        self.backend = backend
        self._matrices: Dict[str, Union[np.ndarray, CSRMatrix, BSPCMatrix]] = {}
        for name, weight in weights.items():
            weight = np.asarray(weight, dtype=np.float64)
            if format_name == "dense" or np.count_nonzero(weight) == weight.size:
                self._matrices[name] = weight
            elif format_name == "csr":
                self._matrices[name] = CSRMatrix.from_dense(weight)
            else:
                grid = grid_for(weight, num_row_strips, num_col_blocks)
                self._matrices[name] = BSPCMatrix.from_dense(weight, grid)

    @classmethod
    def from_graph(cls, graph, backend: Optional[str] = None) -> "NumericExecutor":
        """Build an executor straight from a pass-decided layer graph.

        Each weight slot is encoded in the format the shared pipeline's
        format-selection pass chose for it (rather than one format for
        the whole model), so the numeric executor runs exactly the
        storage mix the cost model priced and the engine executes.
        """
        from repro.compiler.passes import run_passes, slot_grid

        if graph.undecided():
            run_passes(graph)
        executor = cls({}, backend=backend or graph.backend)
        for _, _, slot in graph.slots():
            weight = np.asarray(slot.array, dtype=np.float64)
            if slot.format == "csr":
                executor._matrices[slot.name] = CSRMatrix.from_dense(weight)
            elif slot.format == "bspc":
                executor._matrices[slot.name] = BSPCMatrix.from_dense(
                    weight, slot_grid(slot)
                )
            else:
                executor._matrices[slot.name] = weight
        return executor

    @property
    def layer_names(self) -> List[str]:
        return list(self._matrices)

    def _layer(self, name: str):
        if name not in self._matrices:
            raise SimulationError(
                f"unknown layer {name!r}; have {self.layer_names}"
            )
        return self._matrices[name]

    def matvec(self, name: str, x: np.ndarray) -> np.ndarray:
        """Layer ``name`` × vector through the kernel registry."""
        matrix = self._layer(name)
        if isinstance(matrix, np.ndarray):
            return matrix @ np.asarray(x)
        return matrix.spmv(np.asarray(x), backend=self.backend)

    def matmat(self, name: str, x: np.ndarray) -> np.ndarray:
        """Layer ``name`` × dense matrix (batched inputs as columns)."""
        matrix = self._layer(name)
        if isinstance(matrix, np.ndarray):
            return matrix @ np.asarray(x)
        return matrix.spmm(np.asarray(x), backend=self.backend)


def simulate(plan: KernelPlan, device: DeviceSpec) -> SimulationResult:
    """Simulate one inference frame of ``plan`` on ``device``."""
    timings = [simulate_layer(layer, device, plan.timesteps) for layer in plan.layers]
    latency = sum(t.busy_us for t in timings)
    return SimulationResult(
        device_name=device.name,
        layers=timings,
        latency_us=latency,
        flops=plan.flops_per_inference,
    )
